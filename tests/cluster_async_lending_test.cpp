// Asynchronous lending data plane (DESIGN §15): fabric round trips with
// donor-side queueing, the full fault surface (loss, reorder, outage
// mid-borrow), timeout/retry with a deterministic give-up, congestion via
// the bounded per-pair in-flight window, and the borrower-side BorrowCache
// (hit/miss accounting, invalidation on flush and donor recall, capacity-0
// no-op contract).
#include "cluster/lend_fabric.hpp"

#include <gtest/gtest.h>

#include "cluster/lending.hpp"
#include "comm/topology.hpp"
#include "hyper/hypervisor.hpp"
#include "sim/simulator.hpp"
#include "tmem/store.hpp"

namespace smartmem::cluster {
namespace {

using tmem::PoolType;

constexpr VmId kVm = 1;
constexpr PageCount kPhys = 64;
// Default lend hops are fixed 40 us each way + 5 us donor service.
constexpr SimTime kHop = 40 * kMicrosecond;
constexpr SimTime kService = 5 * kMicrosecond;

hyper::HypervisorConfig hyp_config(PageCount pages) {
  hyper::HypervisorConfig cfg;
  cfg.total_tmem_pages = pages;
  return cfg;
}

/// Two-node async rig: node 0 borrows, node 1 donates, both on one shared
/// simulator (immediate mode). The topology and protocol config are taken
/// at construction so tests can install faults/queue bounds first.
struct AsyncRig {
  explicit AsyncRig(const comm::ClusterTopology& topo,
                    const AsyncLendingConfig& acfg)
      : borrower(sim, hyp_config(kPhys)),
        donor(sim, hyp_config(kPhys)),
        broker({&borrower, &donor}) {
    borrower.register_vm(kVm);
    donor.register_vm(kVm);
    borrower.set_remote_tmem(broker.port(0));
    donor.set_remote_tmem(broker.port(1));
    donor.set_node_quota(kPhys / 2);
    broker.enable_async(acfg, topo);
    broker.attach_sim(0, &sim);
    broker.attach_sim(1, &sim);
  }

  LendFabricStats totals() const { return broker.fabric()->totals(); }

  sim::Simulator sim;
  hyper::Hypervisor borrower;
  hyper::Hypervisor donor;
  LendingBroker broker;
};

AsyncLendingConfig async_on(PageCount cache_pages = 0) {
  AsyncLendingConfig cfg;
  cfg.enabled = true;
  cfg.cache_pages = cache_pages;
  return cfg;
}

TEST(AsyncLendingTest, RoundTripChargesModeledRttThroughThePort) {
  AsyncRig rig((comm::ClusterTopology()), async_on());
  EXPECT_TRUE(rig.broker.port(0)->async_data_plane());

  // First exchange: req hop + donor service + resp hop, no queueing.
  ASSERT_TRUE(rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0,
                                             42));
  EXPECT_EQ(rig.broker.port(0)->last_op_elapsed(), 2 * kHop + kService);

  const auto payload =
      rig.broker.port(0)->remote_get(kVm, PoolType::kPersistent, 1, 0);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, 42u);
  // The get queues behind the put still occupying the donor (same sim
  // instant): service starts at the put's donor_next_free.
  EXPECT_GT(rig.broker.port(0)->last_op_elapsed(), 2 * kHop + kService);

  const LendFabricStats t = rig.totals();
  EXPECT_EQ(t.requests, 2u);
  EXPECT_EQ(t.responses, 2u);
  EXPECT_EQ(t.give_ups, 0u);
  EXPECT_EQ(t.put_rtt_us.count(), 1u);
  EXPECT_EQ(t.get_rtt_us.count(), 1u);
  EXPECT_GT(t.req_bytes, 0u);
  EXPECT_GT(t.resp_bytes, 0u);
}

TEST(AsyncLendingTest, SyncPlaneReportsNoAsyncAndZeroElapsed) {
  // enable_async with enabled=false must leave the historic plane intact.
  AsyncRig rig((comm::ClusterTopology()), AsyncLendingConfig{});
  EXPECT_EQ(rig.broker.fabric(), nullptr);
  EXPECT_FALSE(rig.broker.port(0)->async_data_plane());
  ASSERT_TRUE(rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0,
                                             42));
  EXPECT_EQ(rig.broker.port(0)->last_op_elapsed(), 0);
}

TEST(AsyncLendingTest, DonorQueueSerializesBackToBackExchanges) {
  AsyncRig rig((comm::ClusterTopology()), async_on());
  SimTime prev = 0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1,
                                               i, 100 + i));
    const SimTime elapsed = rig.broker.port(0)->last_op_elapsed();
    EXPECT_GT(elapsed, prev);  // each put waits behind the previous service
    prev = elapsed;
  }
  // Exactly one service-time step per queued exchange.
  EXPECT_EQ(prev, 2 * kHop + 3 * kService);
}

TEST(AsyncLendingTest, TotalRequestLossExhaustsAttemptsIntoAFailedPut) {
  comm::ClusterTopology topo;
  topo.internode_lend_req.faults.loss_rate = 1.0;
  AsyncRig rig(topo, async_on());

  EXPECT_FALSE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0, 42));
  EXPECT_EQ(rig.broker.failed_placements(), 1u);
  EXPECT_EQ(rig.broker.borrow_placements(), 0u);
  EXPECT_EQ(rig.donor.lent_pages(), 0u);
  // The guest pays the full retry budget: max_attempts x timeout.
  const AsyncLendingConfig defaults = async_on();
  EXPECT_EQ(rig.broker.port(0)->last_op_elapsed(),
            defaults.max_attempts * defaults.timeout);

  const LendFabricStats t = rig.totals();
  EXPECT_EQ(t.requests, defaults.max_attempts);
  EXPECT_EQ(t.retries, defaults.max_attempts - 1);
  EXPECT_EQ(t.timeouts, defaults.max_attempts);
  EXPECT_EQ(t.lost_requests, defaults.max_attempts);
  EXPECT_EQ(t.give_ups, 1u);
  EXPECT_EQ(t.responses, 0u);
}

TEST(AsyncLendingTest, ResponseLossTimesOutTheBorrowerToo) {
  comm::ClusterTopology topo;
  topo.internode_lend_resp.faults.loss_rate = 1.0;
  AsyncRig rig(topo, async_on());
  EXPECT_FALSE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0, 42));
  const LendFabricStats t = rig.totals();
  EXPECT_EQ(t.lost_responses, async_on().max_attempts);
  EXPECT_EQ(t.give_ups, 1u);
}

TEST(AsyncLendingTest, ReorderedLateResponseIsIndistinguishableFromLoss) {
  comm::ClusterTopology topo;
  // Every response draws the reorder penalty; the default reorder_extra
  // (10 ms) pushes it past the 2 ms attempt timeout.
  topo.internode_lend_resp.faults.reorder_rate = 1.0;
  AsyncRig rig(topo, async_on());
  EXPECT_FALSE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0, 42));
  const LendFabricStats t = rig.totals();
  EXPECT_EQ(t.late_responses, async_on().max_attempts);
  EXPECT_EQ(t.reordered, async_on().max_attempts);
  EXPECT_EQ(t.give_ups, 1u);
}

TEST(AsyncLendingTest, OutageWindowFailsBorrowsInsideItOnly) {
  comm::ClusterTopology topo;
  topo.internode_lend_req.faults.down_from = 1 * kMillisecond;
  topo.internode_lend_req.faults.down_until = 100 * kMillisecond;
  AsyncRig rig(topo, async_on());

  // Before the window: clean round trip.
  ASSERT_TRUE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0, 42));

  // Inside the window: every attempt's send is dropped on the floor.
  rig.sim.run_until(2 * kMillisecond);
  EXPECT_FALSE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 1, 43));
  EXPECT_EQ(rig.totals().outage_drops, async_on().max_attempts);
  EXPECT_EQ(rig.totals().give_ups, 1u);

  // After the window: service resumes.
  rig.sim.run_until(200 * kMillisecond);
  EXPECT_TRUE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 2, 44));
  EXPECT_EQ(rig.broker.borrow_placements(), 2u);
}

TEST(AsyncLendingTest, PersistentGetGiveUpFallsBackSynchronously) {
  comm::ClusterTopology topo;
  topo.internode_lend_req.faults.down_from = 1 * kMillisecond;
  topo.internode_lend_req.faults.down_until = 100 * kMillisecond;
  AsyncRig rig(topo, async_on());
  ASSERT_TRUE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0, 42));

  // The transport is down but the guest holds its only copy remotely: the
  // broker must still produce the page, charging the retry budget.
  rig.sim.run_until(2 * kMillisecond);
  const auto payload =
      rig.broker.port(0)->remote_get(kVm, PoolType::kPersistent, 1, 0);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, 42u);
  EXPECT_EQ(rig.totals().get_fallbacks, 1u);
  const AsyncLendingConfig defaults = async_on();
  EXPECT_EQ(rig.broker.port(0)->last_op_elapsed(),
            defaults.max_attempts * defaults.timeout);
}

TEST(AsyncLendingTest, FailedReplacementDropsTheEntrySoOwnsNeverLies) {
  comm::ClusterTopology topo;
  topo.internode_lend_req.faults.down_from = 1 * kMillisecond;
  topo.internode_lend_req.faults.down_until = 100 * kMillisecond;
  AsyncRig rig(topo, async_on(8));
  ASSERT_TRUE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0, 42));
  ASSERT_TRUE(rig.broker.port(0)->owns(kVm, PoolType::kPersistent, 1, 0));

  // The replacement put never reaches the donor: the stale copy must not
  // survive anywhere — not in the index, not at the donor, not in the cache.
  rig.sim.run_until(2 * kMillisecond);
  EXPECT_FALSE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0, 43));
  EXPECT_EQ(rig.broker.failed_replacements(), 1u);
  EXPECT_FALSE(rig.broker.port(0)->owns(kVm, PoolType::kPersistent, 1, 0));
  EXPECT_EQ(rig.donor.lent_pages(), 0u);
  EXPECT_EQ(rig.broker.fabric()->cache(0).size(), 0u);
  EXPECT_FALSE(rig.broker.port(0)
                   ->remote_get(kVm, PoolType::kPersistent, 1, 0)
                   .has_value());
  // A failed replacement is transport loss, not donor shortage: it stays
  // out of the demand signal.
  EXPECT_EQ(rig.broker.failed_placements(), 0u);
}

TEST(AsyncLendingTest, BoundedInFlightWindowCongestsThenDrains) {
  comm::ClusterTopology topo;
  topo.internode_lend_req.queue_capacity = 2;
  AsyncRig rig(topo, async_on());

  // Two exchanges in flight saturate the pipe; the third is refused
  // without touching the wire.
  ASSERT_TRUE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0, 42));
  ASSERT_TRUE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 1, 43));
  EXPECT_EQ(rig.broker.fabric()->in_flight(0), 2u);
  EXPECT_FALSE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 2, 44));
  EXPECT_EQ(rig.totals().congestion_drops, 1u);
  EXPECT_EQ(rig.totals().requests, 2u);  // the refused one never sent

  // Completion timers drain the window; fresh placements flow again.
  rig.sim.run();
  EXPECT_EQ(rig.broker.fabric()->in_flight(0), 0u);
  EXPECT_TRUE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 2, 44));
}

// ---- BorrowCache unit behaviour -------------------------------------------

TEST(BorrowCacheTest, LruEvictsColdestAndCountsEverything) {
  BorrowCache cache(2);
  const RemoteKey a{kVm, PoolType::kPersistent, 1, 0};
  const RemoteKey b{kVm, PoolType::kPersistent, 1, 1};
  const RemoteKey c{kVm, PoolType::kPersistent, 1, 2};

  EXPECT_FALSE(cache.lookup(a).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert(a, 10);
  cache.insert(b, 11);
  EXPECT_EQ(*cache.lookup(a), 10u);  // bumps a to MRU; b is now coldest
  cache.insert(c, 12);               // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_EQ(*cache.lookup(a), 10u);
  EXPECT_EQ(*cache.lookup(c), 12u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);

  // Refresh replaces the payload without a new insertion slot.
  cache.insert(a, 20);
  EXPECT_EQ(*cache.lookup(a), 20u);
  EXPECT_EQ(cache.insertions(), 3u);

  cache.erase(a);
  EXPECT_EQ(cache.invalidations(), 1u);
  cache.erase(a);  // double-erase counts nothing
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BorrowCacheTest, CapacityZeroIsACompleteNoOp) {
  BorrowCache cache(0);
  EXPECT_FALSE(cache.enabled());
  const RemoteKey a{kVm, PoolType::kPersistent, 1, 0};
  cache.insert(a, 10);
  EXPECT_FALSE(cache.lookup(a).has_value());
  cache.erase(a);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.insertions(), 0u);
  EXPECT_EQ(cache.invalidations(), 0u);
}

// ---- BorrowCache wired into the broker ------------------------------------

TEST(AsyncLendingCacheTest, HitServesAtTheAccessPointForFree) {
  AsyncRig rig((comm::ClusterTopology()), async_on(8));
  ASSERT_TRUE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0, 42));

  // The put populated the cache: the get never crosses the fabric.
  const auto payload =
      rig.broker.port(0)->remote_get(kVm, PoolType::kPersistent, 1, 0);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, 42u);
  EXPECT_EQ(rig.broker.port(0)->last_op_elapsed(), 0);
  EXPECT_EQ(rig.totals().requests, 1u);  // only the put went out
  EXPECT_EQ(rig.broker.fabric()->cache(0).hits(), 1u);
  // The donor copy survives a persistent cache hit.
  EXPECT_EQ(rig.donor.lent_pages(), 1u);
  EXPECT_TRUE(rig.broker.port(0)->owns(kVm, PoolType::kPersistent, 1, 0));
  // The modeled get RTT records the hit at 0 us — the metric the cache cuts.
  EXPECT_EQ(rig.totals().get_rtt_us.count(), 1u);
  EXPECT_EQ(rig.totals().get_rtt_us.mean(), 0.0);
}

TEST(AsyncLendingCacheTest, EphemeralHitStaysExclusiveViaInvalidate) {
  AsyncRig rig((comm::ClusterTopology()), async_on(8));
  ASSERT_TRUE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kEphemeral, 2, 0, 7));
  ASSERT_EQ(rig.donor.lent_pages(), 1u);

  // The cache hit consumes the borrowed page exactly like a fabric hit
  // would: fire-and-forget invalidate, donor frame freed, index forgets.
  const auto hit =
      rig.broker.port(0)->remote_get(kVm, PoolType::kEphemeral, 2, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 7u);
  EXPECT_GE(rig.totals().invalidates, 1u);
  EXPECT_EQ(rig.donor.lent_pages(), 0u);
  EXPECT_FALSE(rig.broker.port(0)->owns(kVm, PoolType::kEphemeral, 2, 0));
  EXPECT_EQ(rig.broker.fabric()->cache(0).size(), 0u);
  EXPECT_FALSE(rig.broker.port(0)
                   ->remote_get(kVm, PoolType::kEphemeral, 2, 0)
                   .has_value());
}

TEST(AsyncLendingCacheTest, FlushInvalidatesTheCachedCopy) {
  AsyncRig rig((comm::ClusterTopology()), async_on(8));
  ASSERT_TRUE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0, 42));
  ASSERT_EQ(rig.broker.fabric()->cache(0).size(), 1u);

  EXPECT_TRUE(rig.broker.port(0)->remote_flush(kVm, PoolType::kPersistent, 1,
                                               0));
  EXPECT_EQ(rig.broker.fabric()->cache(0).size(), 0u);
  EXPECT_EQ(rig.broker.fabric()->cache(0).invalidations(), 1u);
  // No stale serve: the key is gone end to end.
  EXPECT_FALSE(rig.broker.port(0)
                   ->remote_get(kVm, PoolType::kPersistent, 1, 0)
                   .has_value());
}

TEST(AsyncLendingCacheTest, ObjectFlushAndReleaseInvalidateEveryEntry) {
  AsyncRig rig((comm::ClusterTopology()), async_on(8));
  for (std::uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 5,
                                               i, 100 + i));
  }
  ASSERT_TRUE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kEphemeral, 6, 0, 200));
  ASSERT_EQ(rig.broker.fabric()->cache(0).size(), 4u);

  EXPECT_EQ(rig.broker.port(0)->remote_flush_object(kVm, PoolType::kPersistent,
                                                    5),
            3u);
  EXPECT_EQ(rig.broker.fabric()->cache(0).size(), 1u);
  EXPECT_EQ(rig.broker.port(0)->release_borrowed(16), 1u);  // the ephemeral
  EXPECT_EQ(rig.broker.fabric()->cache(0).size(), 0u);
  EXPECT_EQ(rig.broker.fabric()->cache(0).invalidations(), 4u);
}

TEST(AsyncLendingCacheTest, DonorRecallInvalidatesTheCachedCopy) {
  AsyncRig rig((comm::ClusterTopology()), async_on(8));
  ASSERT_TRUE(
      rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0, 42));
  ASSERT_EQ(rig.broker.fabric()->cache(0).size(), 1u);

  // Donor recalls its frames (quota grew back): the persistent page
  // migrates home and the borrower-side cached copy dies with the entry.
  EXPECT_EQ(rig.broker.recall_lent(1, 16), 1u);
  EXPECT_EQ(rig.broker.fabric()->cache(0).size(), 0u);
  EXPECT_EQ(rig.broker.fabric()->cache(0).invalidations(), 1u);
  EXPECT_FALSE(rig.broker.port(0)->owns(kVm, PoolType::kPersistent, 1, 0));

  // The page is now local: the cache must not resurrect the borrowed copy.
  const auto local = rig.borrower.frontswap_get(kVm, 1, 0);
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(*local, 42u);
}

TEST(AsyncLendingCacheTest, CapacityZeroDisablesCleanly) {
  // cache_pages = 0 must behave exactly like "no cache at all": every get
  // still pays a fabric round trip, no cache counter ever moves, and the
  // cache has no effect on the fabric's Rng streams (the put exchanges of
  // a cached and an uncached rig draw identical latencies).
  AsyncRig off((comm::ClusterTopology()), async_on(0));
  AsyncRig on((comm::ClusterTopology()), async_on(8));

  for (AsyncRig* rig : {&off, &on}) {
    ASSERT_TRUE(
        rig->broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1, 0, 42));
    ASSERT_TRUE(rig->broker.port(0)
                    ->remote_get(kVm, PoolType::kPersistent, 1, 0)
                    .has_value());
  }
  // Same put exchange either way; the get crosses the fabric only when the
  // cache is off.
  EXPECT_EQ(off.totals().requests, 2u);
  EXPECT_EQ(on.totals().requests, 1u);
  EXPECT_GT(off.broker.port(0)->last_op_elapsed(), 0);
  EXPECT_EQ(on.broker.port(0)->last_op_elapsed(), 0);
  EXPECT_DOUBLE_EQ(off.totals().put_rtt_us.mean(),
                   on.totals().put_rtt_us.mean());
  EXPECT_EQ(off.broker.fabric()->cache(0).hits(), 0u);
  EXPECT_EQ(off.broker.fabric()->cache(0).misses(), 0u);
  EXPECT_EQ(off.broker.fabric()->cache(0).insertions(), 0u);
  EXPECT_EQ(off.broker.fabric()->cache(0).size(), 0u);
}

}  // namespace
}  // namespace smartmem::cluster
