// ThreadPool contract: futures carry results and exceptions, for_each_index
// covers every slot exactly once, destruction drains queued work, and the
// serial parallel_for_each path preserves index order.
#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace smartmem {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.size(), ThreadPool::resolve_jobs(0));
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ForEachIndexCoversEverySlotOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.for_each_index(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ForEachIndexRethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.for_each_index(64, [&](std::size_t i) {
      if (i == 5 || i == 40) {
        throw std::out_of_range("idx " + std::to_string(i));
      }
      ++completed;
    });
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "idx 5");  // lowest index wins, deterministically
  }
  // The rethrow happens only after the barrier: all healthy tasks ran.
  EXPECT_EQ(completed.load(), 62);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedTasksUnderLoad) {
  std::atomic<int> done{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++done;
      });
    }
    // Destructor runs with most of the queue still pending.
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, SerialParallelForEachRunsInIndexOrderInline) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for_each(1, 16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<std::size_t> expect(16);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPoolTest, ParallelForEachFillsPreSizedSlots) {
  std::vector<std::uint64_t> slots(100, 0);
  parallel_for_each(4, slots.size(), [&](std::size_t i) {
    slots[i] = 1000 + i;  // deterministic slot indexed by i, not completion
  });
  for (std::size_t i = 0; i < slots.size(); ++i) EXPECT_EQ(slots[i], 1000 + i);
}

}  // namespace
}  // namespace smartmem
