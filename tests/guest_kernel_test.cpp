// Guest kernel model: fault handling, PFRA reclaim, and the frontswap path.
#include "guest/guest_kernel.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hyper/hypervisor.hpp"
#include "sim/disk.hpp"
#include "sim/simulator.hpp"

namespace smartmem::guest {
namespace {

struct Rig {
  sim::Simulator sim;
  std::unique_ptr<hyper::Hypervisor> hyp;
  std::unique_ptr<sim::DiskDevice> disk;
  std::unique_ptr<GuestKernel> kernel;

  explicit Rig(PageCount tmem_pages, GuestConfig cfg = {},
               PageCount ram = 64) {
    hyper::HypervisorConfig hcfg;
    hcfg.total_tmem_pages = tmem_pages;
    hyp = std::make_unique<hyper::Hypervisor>(sim, hcfg);
    hyp->register_vm(1);
    disk = std::make_unique<sim::DiskDevice>(sim, sim::DiskModel{});
    cfg.vm = 1;
    cfg.ram_pages = ram;
    cfg.kernel_reserved_pages = 8;
    if (cfg.swap_slots == 0) cfg.swap_slots = 512;
    if (cfg.low_watermark == 0) cfg.low_watermark = 4;
    if (cfg.high_watermark == 0) cfg.high_watermark = 8;
    kernel = std::make_unique<GuestKernel>(sim, *hyp, *disk, cfg);
  }
};

TEST(GuestKernelTest, RejectsBadConfig) {
  sim::Simulator sim;
  hyper::HypervisorConfig hcfg;
  hcfg.total_tmem_pages = 16;
  hyper::Hypervisor hyp(sim, hcfg);
  sim::DiskDevice disk(sim, sim::DiskModel{});
  GuestConfig cfg;
  cfg.vm = 1;  // not registered
  cfg.ram_pages = 64;
  cfg.swap_slots = 64;
  EXPECT_THROW(GuestKernel(sim, hyp, disk, cfg), std::invalid_argument);
  hyp.register_vm(1);
  cfg.ram_pages = 4;
  cfg.kernel_reserved_pages = 4;  // reserved >= RAM
  EXPECT_THROW(GuestKernel(sim, hyp, disk, cfg), std::invalid_argument);
}

TEST(GuestKernelTest, ZeroFillFirstTouch) {
  Rig rig(16);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 4);
  const auto r = rig.kernel->touch(asid, base, /*write=*/false, 0);
  EXPECT_EQ(r.outcome, TouchOutcome::kZeroFill);
  const auto& costs = rig.kernel->config().costs;
  EXPECT_EQ(r.end, costs.fault_overhead + costs.zero_fill);
  EXPECT_EQ(rig.kernel->page_state(asid, base), mem::PageState::kResident);
  EXPECT_EQ(rig.kernel->resident_pages(asid), 1u);
  EXPECT_EQ(rig.kernel->page_content(asid, base), 0u);  // fresh zero page
}

TEST(GuestKernelTest, ResidentTouchIsFree) {
  Rig rig(16);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 1);
  const SimTime t1 = rig.kernel->touch(asid, base, false, 0).end;
  const auto r = rig.kernel->touch(asid, base, false, t1);
  EXPECT_EQ(r.outcome, TouchOutcome::kResidentHit);
  EXPECT_EQ(r.end, t1);
}

TEST(GuestKernelTest, WriteUpdatesContentToken) {
  Rig rig(16);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 1);
  rig.kernel->touch(asid, base, true, 0);
  const PageContent c1 = rig.kernel->page_content(asid, base);
  rig.kernel->touch(asid, base, true, 0);
  const PageContent c2 = rig.kernel->page_content(asid, base);
  EXPECT_NE(c1, 0u);
  EXPECT_NE(c1, c2);
}

TEST(GuestKernelTest, TouchUnmappedThrows) {
  Rig rig(16);
  const auto asid = rig.kernel->create_address_space();
  EXPECT_THROW(rig.kernel->touch(asid, 0, false, 0), std::out_of_range);
  rig.kernel->alloc_region(asid, 1);
  EXPECT_THROW(rig.kernel->touch(asid, 5, false, 0), std::out_of_range);
}

TEST(GuestKernelTest, PressureTriggersReclaimIntoTmem) {
  Rig rig(128);
  const auto asid = rig.kernel->create_address_space();
  // 56 usable frames; touch 80 pages (written => dirty => frontswap puts).
  const Vpn base = rig.kernel->alloc_region(asid, 80);
  SimTime t = 0;
  for (Vpn v = base; v < base + 80; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
  }
  const GuestStats& s = rig.kernel->stats();
  EXPECT_GT(s.reclaim_runs, 0u);
  EXPECT_GT(s.swapouts_tmem, 0u);
  EXPECT_EQ(s.swapouts_disk, 0u);  // plenty of tmem
  EXPECT_EQ(rig.hyp->tmem_used(1), s.swapouts_tmem);
  EXPECT_GE(rig.kernel->free_frames(), 4u);
}

TEST(GuestKernelTest, SwapInFromTmemRestoresContent) {
  Rig rig(128);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 80);
  SimTime t = 0;
  std::vector<PageContent> tokens(80);
  for (Vpn v = base; v < base + 80; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
    tokens[v - base] = rig.kernel->page_content(asid, v);
  }
  // The early pages were evicted; re-reading them must come from tmem with
  // identical content.
  bool saw_tmem_swapin = false;
  for (Vpn v = base; v < base + 80; ++v) {
    const auto r = rig.kernel->touch(asid, v, false, t);
    t = r.end;
    if (r.outcome == TouchOutcome::kTmemSwapIn) saw_tmem_swapin = true;
    EXPECT_EQ(rig.kernel->page_content(asid, v), tokens[v - base]);
  }
  EXPECT_TRUE(saw_tmem_swapin);
  EXPECT_GT(rig.kernel->stats().swapins_tmem, 0u);
  EXPECT_EQ(rig.kernel->stats().swapins_disk, 0u);
}

TEST(GuestKernelTest, NoTmemFallsBackToDisk) {
  GuestConfig cfg;
  cfg.frontswap_enabled = false;
  Rig rig(128, cfg);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 80);
  SimTime t = 0;
  for (Vpn v = base; v < base + 80; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
  }
  EXPECT_EQ(rig.kernel->stats().swapouts_tmem, 0u);
  EXPECT_GT(rig.kernel->stats().swapouts_disk, 0u);
  EXPECT_GT(rig.disk->stats().writes, 0u);
  // Re-touch an evicted page: a blocking disk read.
  const auto r = rig.kernel->touch(asid, base, false, t);
  EXPECT_EQ(r.outcome, TouchOutcome::kDiskSwapIn);
  EXPECT_GT(r.end - t, rig.disk->model().access_latency / 2);
}

TEST(GuestKernelTest, FailedPutGoesToDiskAndIsCounted) {
  Rig rig(0);  // no tmem capacity at all: every put fails
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 80);
  SimTime t = 0;
  for (Vpn v = base; v < base + 80; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
  }
  const GuestStats& s = rig.kernel->stats();
  EXPECT_EQ(s.swapouts_tmem, 0u);
  EXPECT_GT(s.swapouts_disk, 0u);
  EXPECT_GT(rig.hyp->vm_data(1).cumul_puts_failed, 0u);
  // Disk-resident content survives the round trip.
  const auto r = rig.kernel->touch(asid, base, false, t);
  EXPECT_EQ(r.outcome, TouchOutcome::kDiskSwapIn);
}

TEST(GuestKernelTest, ExclusiveGetsReleaseTmemOnSwapIn) {
  GuestConfig cfg;
  cfg.frontswap_exclusive_gets = true;
  Rig rig(128, cfg);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 80);
  SimTime t = 0;
  for (Vpn v = base; v < base + 80; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
  }
  const PageCount held_before = rig.hyp->tmem_used(1);
  ASSERT_GT(held_before, 0u);
  // Touch every page: all swapped pages come back and are flushed from tmem.
  for (Vpn v = base; v < base + 80; ++v) {
    t = rig.kernel->touch(asid, v, false, t).end;
  }
  // Whatever was re-evicted during this pass is back in tmem, but each
  // swap-in released its page, so flushes must have happened.
  EXPECT_GT(rig.hyp->vm_data(1).cumul_flushes, 0u);
  EXPECT_EQ(rig.kernel->stats().swapouts_clean, 0u);
}

TEST(GuestKernelTest, NonExclusiveGetsPinTmemAndSkipRewrite) {
  GuestConfig cfg;
  cfg.frontswap_exclusive_gets = false;
  Rig rig(128, cfg);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 80);
  SimTime t = 0;
  for (Vpn v = base; v < base + 80; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
  }
  // Read pass: swapped pages come back but stay pinned in tmem; a second
  // eviction of those clean pages costs no put.
  for (Vpn v = base; v < base + 80; ++v) {
    t = rig.kernel->touch(asid, v, false, t).end;
  }
  EXPECT_GT(rig.kernel->stats().swapouts_clean, 0u);
  // Writing invalidates the pinned copy (flush) before re-dirtying.
  const std::uint64_t flushes_before = rig.hyp->vm_data(1).cumul_flushes;
  for (Vpn v = base; v < base + 80; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
  }
  EXPECT_GT(rig.hyp->vm_data(1).cumul_flushes, flushes_before);
}

TEST(GuestKernelTest, FreeRegionReleasesFramesSlotsAndTmem) {
  Rig rig(128);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 80);
  SimTime t = 0;
  for (Vpn v = base; v < base + 80; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
  }
  ASSERT_GT(rig.hyp->tmem_used(1), 0u);
  rig.kernel->free_region(asid, base, 80, t);
  EXPECT_EQ(rig.hyp->tmem_used(1), 0u);
  EXPECT_EQ(rig.kernel->swap().used_slots(), 0u);
  EXPECT_EQ(rig.kernel->free_frames(), rig.kernel->usable_frames());
  EXPECT_EQ(rig.kernel->resident_pages(asid), 0u);
}

TEST(GuestKernelTest, DestroyAddressSpaceReleasesEverything) {
  Rig rig(128);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 80);
  SimTime t = 0;
  for (Vpn v = base; v < base + 80; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
  }
  rig.kernel->destroy_address_space(asid, t);
  EXPECT_EQ(rig.hyp->tmem_used(1), 0u);
  EXPECT_EQ(rig.kernel->free_frames(), rig.kernel->usable_frames());
  EXPECT_THROW(rig.kernel->touch(asid, base, false, t), std::out_of_range);
}

TEST(GuestKernelTest, MultipleAddressSpacesShareFrames) {
  Rig rig(128);
  const auto a = rig.kernel->create_address_space();
  const auto b = rig.kernel->create_address_space();
  const Vpn base_a = rig.kernel->alloc_region(a, 40);
  const Vpn base_b = rig.kernel->alloc_region(b, 40);
  SimTime t = 0;
  for (Vpn v = 0; v < 40; ++v) {
    t = rig.kernel->touch(a, base_a + v, true, t).end;
    t = rig.kernel->touch(b, base_b + v, true, t).end;
  }
  // 80 pages against 56 usable frames: both spaces were squeezed.
  EXPECT_EQ(rig.kernel->resident_pages(a) + rig.kernel->resident_pages(b),
            rig.kernel->usable_frames() - rig.kernel->free_frames());
  EXPECT_GT(rig.kernel->stats().pages_reclaimed, 0u);
}

TEST(GuestKernelTest, OomWhenSwapExhausted) {
  GuestConfig cfg;
  cfg.swap_slots = 8;  // tiny swap
  cfg.frontswap_enabled = false;
  Rig rig(0, cfg);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 200);
  SimTime t = 0;
  EXPECT_THROW(
      {
        for (Vpn v = base; v < base + 200; ++v) {
          t = rig.kernel->touch(asid, v, true, t).end;
        }
      },
      OutOfMemoryError);
  EXPECT_GT(rig.kernel->stats().oom_kills, 0u);
}

TEST(GuestKernelTest, SecondChanceKeepsHotPagesResident) {
  Rig rig(128);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 80);
  SimTime t = 0;
  // Pin a small hot set by touching it between every batch of cold pages.
  const PageCount hot = 8;
  for (Vpn v = base + hot; v < base + 80; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
    for (Vpn h = base; h < base + hot; ++h) {
      t = rig.kernel->touch(asid, h, false, t).end;
    }
  }
  // The hot set should still be resident: its referenced bits save it.
  for (Vpn h = base; h < base + hot; ++h) {
    EXPECT_EQ(rig.kernel->page_state(asid, h), mem::PageState::kResident)
        << "hot page " << (h - base) << " was evicted";
  }
}

}  // namespace
}  // namespace smartmem::guest
