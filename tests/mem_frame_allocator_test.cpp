#include "mem/frame_allocator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace smartmem::mem {
namespace {

TEST(FrameAllocatorTest, AllocatesAllFramesExactlyOnce) {
  FrameAllocator fa(100);
  std::set<Pfn> seen;
  for (int i = 0; i < 100; ++i) {
    const auto f = fa.allocate();
    ASSERT_TRUE(f.has_value());
    EXPECT_LT(*f, 100u);
    EXPECT_TRUE(seen.insert(*f).second) << "duplicate frame " << *f;
  }
  EXPECT_FALSE(fa.allocate().has_value());
  EXPECT_EQ(fa.free_count(), 0u);
  EXPECT_EQ(fa.used_count(), 100u);
}

TEST(FrameAllocatorTest, FreeMakesFrameReusable) {
  FrameAllocator fa(2);
  const Pfn a = *fa.allocate();
  const Pfn b = *fa.allocate();
  EXPECT_FALSE(fa.allocate().has_value());
  fa.free(a);
  EXPECT_EQ(fa.free_count(), 1u);
  const Pfn c = *fa.allocate();
  EXPECT_EQ(c, a);
  fa.free(b);
  fa.free(c);
  EXPECT_EQ(fa.free_count(), 2u);
}

TEST(FrameAllocatorTest, ZeroCapacity) {
  FrameAllocator fa(0);
  EXPECT_FALSE(fa.allocate().has_value());
  EXPECT_EQ(fa.total(), 0u);
}

TEST(FrameAllocatorTest, Counters) {
  FrameAllocator fa(10);
  EXPECT_EQ(fa.total(), 10u);
  EXPECT_EQ(fa.free_count(), 10u);
  (void)fa.allocate();
  (void)fa.allocate();
  EXPECT_EQ(fa.used_count(), 2u);
  EXPECT_EQ(fa.free_count(), 8u);
}

}  // namespace
}  // namespace smartmem::mem
