#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace smartmem {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats rs;
  rs.add(42.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.mean(), 42.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunningStatsTest, MergeTwoEmpties) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(RunningStatsTest, MergeSingletons) {
  RunningStats a, b;
  a.add(2.0);
  b.add(6.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  // Sample variance of {2, 6}: (4 + 4) / 1 = 8.
  EXPECT_NEAR(a.variance(), 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.sum(), 8.0);
}

TEST(RunningStatsTest, MergeSingletonIntoLarger) {
  RunningStats all, a, b;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    all.add(x);
    a.add(x);
  }
  all.add(100.0);
  b.add(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
}

TEST(RunningStatsTest, Reset) {
  RunningStats rs;
  rs.add(5.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
}

TEST(HistogramTest, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // bucket 0
  h.add(0.99);  // bucket 0
  h.add(5.0);   // bucket 5
  h.add(9.99);  // bucket 9
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

TEST(HistogramTest, UnderAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.5);
  h.add(1.0);  // hi edge goes to overflow
  h.add(7.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(HistogramTest, QuantileEmpty) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileAllMassInUnderflow) {
  Histogram h(10.0, 20.0, 4);
  for (int i = 0; i < 5; ++i) h.add(1.0);
  // Every sample sits below lo(): all quantiles collapse to the lo() bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(HistogramTest, QuantileAllMassInOverflow) {
  Histogram h(10.0, 20.0, 4);
  for (int i = 0; i < 5; ++i) h.add(100.0);
  // All mass above hi(): every positive quantile saturates at the hi() bound
  // (q=0 degenerates to lo(), the "nothing below this" answer).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
}

TEST(HistogramTest, QuantileSingleBucketInterpolates) {
  Histogram h(0.0, 10.0, 1);
  for (int i = 0; i < 4; ++i) h.add(5.0);
  // One bucket holds everything: the quantile interpolates linearly across
  // the full [lo, hi) width regardless of where the mass actually sits.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(HistogramTest, QuantileClampsOutOfRangeQ) {
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.quantile(1.0));
}

TEST(SummaryTest, Summarize) {
  const Summary s = summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_EQ(s.n, 3u);
}

TEST(SummaryTest, SummarizeEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace smartmem
