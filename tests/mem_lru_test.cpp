#include "mem/lru.hpp"

#include <gtest/gtest.h>

namespace smartmem::mem {
namespace {

TEST(LruTest, EmptyHasNoVictim) {
  LruLists lru;
  EXPECT_FALSE(lru.pop_victim().has_value());
  EXPECT_EQ(lru.size(), 0u);
}

TEST(LruTest, InsertGoesToInactive) {
  LruLists lru;
  lru.insert(1);
  EXPECT_TRUE(lru.tracked(1));
  EXPECT_EQ(lru.inactive_size(), 1u);
  EXPECT_EQ(lru.active_size(), 0u);
}

TEST(LruTest, VictimIsOldestInactive) {
  LruLists lru;
  lru.insert(1);
  lru.insert(2);
  lru.insert(3);
  EXPECT_EQ(lru.pop_victim(), 1u);
  EXPECT_EQ(lru.pop_victim(), 2u);
  EXPECT_EQ(lru.pop_victim(), 3u);
}

TEST(LruTest, TouchPromotesToActive) {
  LruLists lru;
  lru.insert(1);
  lru.insert(2);
  lru.touch(1);
  EXPECT_EQ(lru.active_size(), 1u);
  // 2 is the only inactive page left; it should be the victim.
  EXPECT_EQ(lru.pop_victim(), 2u);
}

TEST(LruTest, TouchOnActiveIsNoOp) {
  LruLists lru;
  lru.insert(1);
  lru.touch(1);
  lru.touch(1);
  EXPECT_EQ(lru.active_size(), 1u);
}

TEST(LruTest, TouchUntrackedIsIgnored) {
  LruLists lru;
  lru.touch(99);
  EXPECT_EQ(lru.size(), 0u);
}

TEST(LruTest, RemoveFromEitherList) {
  LruLists lru;
  lru.insert(1);
  lru.insert(2);
  lru.touch(2);
  lru.remove(1);
  lru.remove(2);
  lru.remove(3);  // untracked: no-op
  EXPECT_EQ(lru.size(), 0u);
}

TEST(LruTest, ActivePagesDemotedWhenInactiveRunsDry) {
  LruLists lru(3);
  for (Vpn p = 0; p < 9; ++p) lru.insert(p);
  for (Vpn p = 0; p < 9; ++p) lru.touch(p);  // everything active
  EXPECT_EQ(lru.inactive_size(), 0u);
  // Victim must come from the cold end of the active list (page 0).
  EXPECT_EQ(lru.pop_victim(), 0u);
  EXPECT_EQ(lru.size(), 8u);
}

TEST(LruTest, EvictionOrderRespectsPromotion) {
  LruLists lru;
  for (Vpn p = 0; p < 4; ++p) lru.insert(p);
  lru.touch(0);  // 0 promoted; inactive order (oldest first): 1, 2, 3
  EXPECT_EQ(lru.pop_victim(), 1u);
  EXPECT_EQ(lru.pop_victim(), 2u);
  EXPECT_EQ(lru.pop_victim(), 3u);
  // Only the active page 0 remains.
  EXPECT_EQ(lru.pop_victim(), 0u);
}

TEST(LruTest, LargePopulationDrainsCompletely) {
  LruLists lru;
  for (Vpn p = 0; p < 10000; ++p) lru.insert(p);
  for (Vpn p = 0; p < 10000; p += 2) lru.touch(p);
  std::size_t drained = 0;
  while (lru.pop_victim()) ++drained;
  EXPECT_EQ(drained, 10000u);
}

}  // namespace
}  // namespace smartmem::mem
