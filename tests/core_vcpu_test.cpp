// vCPU runner: op execution, batching, sleeps, markers and stops.
#include "core/vcpu.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "workloads/script_workload.hpp"

namespace smartmem::core {
namespace {

using workloads::AccessPattern;
using workloads::MemOp;
using workloads::ScriptWorkload;

struct Rig {
  sim::Simulator sim;
  std::unique_ptr<hyper::Hypervisor> hyp;
  std::unique_ptr<sim::DiskDevice> disk;
  std::unique_ptr<guest::GuestKernel> kernel;

  explicit Rig(PageCount tmem = 256) {
    hyper::HypervisorConfig hcfg;
    hcfg.total_tmem_pages = tmem;
    hyp = std::make_unique<hyper::Hypervisor>(sim, hcfg);
    hyp->register_vm(1);
    disk = std::make_unique<sim::DiskDevice>(sim, sim::DiskModel{});
    guest::GuestConfig gcfg;
    gcfg.vm = 1;
    gcfg.ram_pages = 64;
    gcfg.kernel_reserved_pages = 8;
    gcfg.swap_slots = 512;
    gcfg.low_watermark = 4;
    gcfg.high_watermark = 8;
    kernel = std::make_unique<guest::GuestKernel>(sim, *hyp, *disk, gcfg);
  }

  VcpuRunner make_runner(std::vector<MemOp> ops, VcpuConfig cfg = {}) {
    return VcpuRunner(sim, *kernel,
                      std::make_unique<ScriptWorkload>(std::move(ops)), cfg);
  }
};

TEST(VcpuTest, NullWorkloadRejected) {
  Rig rig;
  EXPECT_THROW(VcpuRunner(rig.sim, *rig.kernel, nullptr, VcpuConfig{}),
               std::invalid_argument);
}

TEST(VcpuTest, RunsSimpleScriptToCompletion) {
  Rig rig;
  auto runner = rig.make_runner({
      MemOp::alloc(16),
      MemOp::touch(0, 0, 16, 16, AccessPattern::kSequential, true,
                   kMicrosecond),
      MemOp::marker("done"),
  });
  runner.start(0);
  rig.sim.run();
  EXPECT_TRUE(runner.finished());
  ASSERT_EQ(runner.milestones().size(), 1u);
  EXPECT_EQ(runner.milestones()[0].label, "done");
  // 16 touches at >= 1us each, plus fault costs.
  EXPECT_GT(runner.finish_time(), 16 * kMicrosecond);
}

TEST(VcpuTest, StartTimeIsHonored) {
  Rig rig;
  auto runner = rig.make_runner({MemOp::marker("m")});
  runner.start(3 * kSecond);
  rig.sim.run();
  EXPECT_EQ(runner.milestones()[0].when, 3 * kSecond);
  EXPECT_THROW(runner.start(0), std::logic_error);
}

TEST(VcpuTest, SleepAdvancesTimeWithoutBusyWork) {
  Rig rig;
  auto runner = rig.make_runner({
      MemOp::marker("before"),
      MemOp::sleep(10 * kSecond),
      MemOp::marker("after"),
  });
  runner.start(0);
  rig.sim.run();
  ASSERT_EQ(runner.milestones().size(), 2u);
  EXPECT_GE(runner.milestones()[1].when - runner.milestones()[0].when,
            10 * kSecond);
  // A sleep is one wake-up event, not thousands of batch polls.
  EXPECT_LT(rig.sim.executed_events(), 20u);
}

TEST(VcpuTest, BatchingDoesNotDistortTotalTime) {
  // The same work executed under very different batch budgets must finish
  // at (nearly) the same simulated time.
  std::vector<MemOp> ops = {
      MemOp::alloc(128),
      MemOp::touch(0, 0, 128, 4096, AccessPattern::kSequential, true,
                   2 * kMicrosecond),
  };
  SimTime coarse_finish, fine_finish;
  {
    Rig rig;
    VcpuConfig cfg;
    cfg.batch_budget = 10 * kMillisecond;
    auto runner = rig.make_runner(ops, cfg);
    runner.start(0);
    rig.sim.run();
    coarse_finish = runner.finish_time();
  }
  {
    Rig rig;
    VcpuConfig cfg;
    cfg.batch_budget = 50 * kMicrosecond;
    auto runner = rig.make_runner(ops, cfg);
    runner.start(0);
    rig.sim.run();
    fine_finish = runner.finish_time();
  }
  EXPECT_EQ(coarse_finish, fine_finish);
}

TEST(VcpuTest, RandomPatternsStayInsideWindow) {
  Rig rig;
  // Window is pages [8, 24) of a 32-page region; touching outside would
  // fault on untouched pages and change the zero-fill count.
  auto runner = rig.make_runner({
      MemOp::alloc(32),
      MemOp::touch(0, 8, 16, 2000, AccessPattern::kUniform, true, 100),
      MemOp::touch(0, 8, 16, 2000, AccessPattern::kZipf, true, 100),
  });
  runner.start(0);
  rig.sim.run();
  EXPECT_TRUE(runner.finished());
  EXPECT_LE(rig.kernel->stats().zero_fills, 16u);
}

TEST(VcpuTest, RequestStopTakesEffectAtBatchBoundary) {
  Rig rig;
  auto runner = rig.make_runner({
      MemOp::alloc(64),
      // Endless touching (script repeats forever).
      MemOp::touch(0, 0, 64, 1000000, AccessPattern::kSequential, true, 500),
  });
  runner.start(0);
  rig.sim.schedule(20 * kMillisecond, [&] { runner.request_stop(); });
  rig.sim.run();
  EXPECT_TRUE(runner.finished());
  EXPECT_GE(runner.finish_time(), 20 * kMillisecond);
  EXPECT_LT(runner.finish_time(), kSecond);
}

TEST(VcpuTest, MarkerHookFires) {
  Rig rig;
  auto runner = rig.make_runner({MemOp::marker("x"), MemOp::marker("y")});
  std::vector<std::string> seen;
  runner.set_marker_hook(
      [&](const std::string& label, SimTime) { seen.push_back(label); });
  runner.start(0);
  rig.sim.run();
  EXPECT_EQ(seen, (std::vector<std::string>{"x", "y"}));
}

TEST(VcpuTest, DeterministicForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Rig rig;
    VcpuConfig cfg;
    cfg.rng_seed = seed;
    auto runner = rig.make_runner(
        {
            MemOp::alloc(64),
            MemOp::touch(0, 0, 64, 5000, AccessPattern::kZipf, true, 300),
        },
        cfg);
    runner.start(0);
    rig.sim.run();
    return runner.finish_time();
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(VcpuTest, FreeRegionOpReleasesMemory) {
  Rig rig;
  auto runner = rig.make_runner({
      MemOp::alloc(32),
      MemOp::touch(0, 0, 32, 32, AccessPattern::kSequential, true, 100),
      MemOp::free_region(0),
      MemOp::marker("freed"),
  });
  runner.start(0);
  rig.sim.run();
  EXPECT_TRUE(runner.finished());
  EXPECT_EQ(rig.kernel->free_frames(), rig.kernel->usable_frames());
}

}  // namespace
}  // namespace smartmem::core
