// Property test: drive the tmem store with long random operation sequences
// and check its global invariants after every step. A side model of the
// global ephemeral LRU (a plain std::list in insertion order — exactly the
// data structure the store used before the intrusive-list rewrite) cross-
// checks that evictions still happen strictly oldest-first.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "tmem/store.hpp"

namespace smartmem::tmem {
namespace {

struct StoreParams {
  PageCount capacity;
  bool dedup;
  std::uint64_t seed;
  /// Compressed-tier byte budget; 0 keeps the tier off (the default chain).
  std::uint64_t comp_bytes = 0;
  CompressedEvictMode evict = CompressedEvictMode::kDemote;
};

class StorePropertyTest : public ::testing::TestWithParam<StoreParams> {};

TEST_P(StorePropertyTest, InvariantsHoldUnderRandomOps) {
  const StoreParams params = GetParam();
  StoreConfig store_cfg;
  store_cfg.total_pages = params.capacity;
  store_cfg.zero_page_dedup = params.dedup;
  store_cfg.compressed.capacity_bytes = params.comp_bytes;
  store_cfg.compressed.model.seed = params.seed * 977 + 1;
  store_cfg.compressed_evict = params.evict;
  TmemStore store(store_cfg);
  Rng rng(params.seed);

  // Model state: what we believe the store holds.
  std::unordered_map<TmemKey, PagePayload, TmemKeyHash> model;
  // Reference LRU: ephemeral keys in insertion order, oldest first.
  std::list<TmemKey> lru_model;
  std::vector<PoolId> pools;
  std::map<PoolId, VmId> owner;
  std::map<PoolId, PoolType> type;

  for (int vm = 1; vm <= 3; ++vm) {
    for (PoolType t : {PoolType::kPersistent, PoolType::kEphemeral}) {
      const PoolId p = store.create_pool(static_cast<VmId>(vm), t);
      pools.push_back(p);
      owner[p] = static_cast<VmId>(vm);
      type[p] = t;
    }
  }

  auto check_invariants = [&] {
    // 1. free + used == capacity.
    ASSERT_EQ(store.free_pages() + store.used_pages(), params.capacity);
    // 2. per-VM counts sum to the number of modelled entries (entries only
    //    disappear via flush/get-destructive/eviction, all of which we
    //    mirror below).
    PageCount total_vm = 0;
    for (VmId vm = 1; vm <= 3; ++vm) total_vm += store.vm_pages(vm);
    ASSERT_EQ(total_vm, model.size());
    // The intrusive list's element count must track the reference LRU.
    ASSERT_EQ(store.ephemeral_pages(), lru_model.size());
    // 3. every modelled persistent entry must still be present (persistent
    //    pages can never be silently dropped).
    for (const auto& [key, payload] : model) {
      if (type[key.pool] == PoolType::kPersistent) {
        ASSERT_TRUE(store.contains(key));
      }
    }
    // 4. compressed-tier ledger: never over budget, page count consistent
    //    with the store's view, and the per-VM effective-byte tallies sum
    //    to exactly the bytes the three tiers hold (deduped pages are 0).
    ASSERT_LE(store.compressed_pool().bytes_used(),
              store.compressed_pool().capacity_bytes());
    ASSERT_EQ(store.compressed_pages(), store.compressed_pool().pages());
    std::uint64_t total_bytes = 0;
    for (VmId vm = 1; vm <= 3; ++vm) total_bytes += store.vm_bytes(vm);
    ASSERT_EQ(total_bytes,
              (store.used_pages() + store.nvm_used_pages()) * kPageSize +
                  store.compressed_pool().bytes_used());
  };

  for (int step = 0; step < 20000; ++step) {
    const PoolId pool = pools[rng.uniform(pools.size())];
    const std::uint64_t object = rng.uniform(4);
    const auto index = static_cast<std::uint32_t>(rng.uniform(64));
    const TmemKey key{pool, object, index};
    switch (rng.uniform(4)) {
      case 0:
      case 1: {  // put (weighted 2x)
        const PagePayload payload = params.dedup && rng.chance(0.3)
                                        ? 0
                                        : rng.next() | 1;
        const PutResult r = store.put(key, payload);
        if (r != PutResult::kNoMemory) {
          model[key] = payload;
        }
        // A fresh store (kStored) lands at the MRU end. That includes the
        // evict-then-reinsert corner where the put key itself was the
        // (deduped) eviction victim mid-replace — drop any stale position
        // first, the tail push below re-adds it.
        if (r == PutResult::kStored && type[pool] == PoolType::kEphemeral) {
          const auto stale =
              std::find(lru_model.begin(), lru_model.end(), key);
          if (stale != lru_model.end()) lru_model.erase(stale);
        }
        // Even a FAILED put may have evicted ephemeral entries while hunting
        // for a frame (deduped victims free nothing). Eviction is strictly
        // oldest-first, so the vanished keys must form a *prefix* of the
        // reference LRU; reconcile the models and then prove nothing past
        // the prefix was touched.
        while (!lru_model.empty() && !store.contains(lru_model.front())) {
          model.erase(lru_model.front());
          lru_model.pop_front();
        }
        for (const auto& k : lru_model) {
          ASSERT_TRUE(store.contains(k))
              << "non-oldest ephemeral entry evicted (LRU order violated)";
        }
        if (r == PutResult::kStored && type[pool] == PoolType::kEphemeral) {
          lru_model.push_back(key);
        }
        break;
      }
      case 2: {  // get
        const auto result = store.get(key);
        auto it = model.find(key);
        if (it != model.end()) {
          ASSERT_TRUE(result.has_value());
          ASSERT_EQ(*result, it->second) << "payload corrupted";
          if (type[pool] == PoolType::kEphemeral) {
            model.erase(it);
            lru_model.remove(key);  // destructive hit leaves the LRU
          }
        } else {
          ASSERT_FALSE(result.has_value());
        }
        break;
      }
      case 3: {  // flush
        const bool existed = store.flush_page(key);
        ASSERT_EQ(existed, model.erase(key) > 0);
        if (existed && type[pool] == PoolType::kEphemeral) {
          lru_model.remove(key);
        }
        break;
      }
    }
    if (step % 500 == 0) check_invariants();
  }
  check_invariants();

  // Teardown: destroying every pool must return the store to pristine state.
  for (PoolId p : pools) store.destroy_pool(p);
  EXPECT_EQ(store.free_pages(), params.capacity);
  EXPECT_EQ(store.compressed_pool().bytes_used(), 0u);
  for (VmId vm = 1; vm <= 3; ++vm) EXPECT_EQ(store.vm_pages(vm), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, StorePropertyTest,
    ::testing::Values(StoreParams{16, false, 1},    // tiny, heavy contention
                      StoreParams{16, true, 2},     // tiny with dedup
                      StoreParams{256, false, 3},   // comfortable
                      StoreParams{256, true, 4},
                      StoreParams{64, false, 5},
                      StoreParams{1, false, 6},     // single page
                      StoreParams{4096, false, 7},
                      // Compressed tier on: demote chain, drop mode, dedup
                      // interaction, and a tiny pool with heavy churn.
                      StoreParams{16, false, 8, 8 * kPageSize},
                      StoreParams{16, false, 9, 8 * kPageSize,
                                  CompressedEvictMode::kDrop},
                      StoreParams{64, true, 10, 16 * kPageSize},
                      StoreParams{4, false, 11, 2 * kPageSize}));

}  // namespace
}  // namespace smartmem::tmem
