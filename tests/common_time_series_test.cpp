#include "common/time_series.hpp"

#include <gtest/gtest.h>

namespace smartmem {
namespace {

TEST(TimeSeriesTest, PushAndSize) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.push(0, 1.0);
  ts.push(kSecond, 2.0);
  EXPECT_EQ(ts.size(), 2u);
}

TEST(TimeSeriesTest, ValueAtStepSemantics) {
  TimeSeries ts;
  ts.push(10, 1.0);
  ts.push(20, 2.0);
  ts.push(30, 3.0);
  EXPECT_DOUBLE_EQ(ts.value_at(5, -1.0), -1.0);   // before first
  EXPECT_DOUBLE_EQ(ts.value_at(10), 1.0);         // exact hit
  EXPECT_DOUBLE_EQ(ts.value_at(15), 1.0);         // between: previous holds
  EXPECT_DOUBLE_EQ(ts.value_at(29), 2.0);
  EXPECT_DOUBLE_EQ(ts.value_at(1000), 3.0);       // after last
}

TEST(TimeSeriesTest, MaxAndMean) {
  TimeSeries ts;
  ts.push(0, 1.0);
  ts.push(1, 5.0);
  ts.push(2, 3.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 5.0);
  EXPECT_DOUBLE_EQ(ts.mean_value(), 3.0);
}

TEST(TimeSeriesTest, DownsampleKeepsBounds) {
  TimeSeries ts;
  for (int i = 0; i < 1000; ++i) ts.push(i, i);
  const TimeSeries down = ts.downsample(10);
  EXPECT_EQ(down.size(), 10u);
  EXPECT_EQ(down.samples().front().when, 0);
  for (std::size_t i = 1; i < down.size(); ++i) {
    EXPECT_LT(down.samples()[i - 1].when, down.samples()[i].when);
  }
}

TEST(TimeSeriesTest, DownsampleNoOpWhenSmall) {
  TimeSeries ts;
  ts.push(0, 1.0);
  ts.push(1, 2.0);
  EXPECT_EQ(ts.downsample(10).size(), 2u);
}

TEST(SeriesSetTest, FindAndAll) {
  SeriesSet set;
  set.series("a").push(0, 1.0);
  EXPECT_NE(set.find("a"), nullptr);
  EXPECT_EQ(set.find("b"), nullptr);
  EXPECT_EQ(set.all().size(), 1u);
}

TEST(SeriesSetTest, AsciiChartRendersAllSeries) {
  SeriesSet set;
  for (SimTime t = 0; t <= 10 * kSecond; t += kSecond) {
    set.series("rising").push(t, static_cast<double>(t));
    set.series("flat").push(t, 100.0);
  }
  const std::string chart = set.ascii_chart(40, 8);
  EXPECT_NE(chart.find("rising"), std::string::npos);
  EXPECT_NE(chart.find("flat"), std::string::npos);
  EXPECT_NE(chart.find('|'), std::string::npos);
}

TEST(SeriesSetTest, AsciiChartEmptySetIsEmpty) {
  SeriesSet set;
  EXPECT_TRUE(set.ascii_chart().empty());
}

}  // namespace
}  // namespace smartmem
