// Phase structure of the two CloudSuite workload models, plus the script
// workload used by runner tests.
#include <gtest/gtest.h>

#include <map>

#include "workloads/graph_analytics.hpp"
#include "workloads/in_memory_analytics.hpp"
#include "workloads/script_workload.hpp"

namespace smartmem::workloads {
namespace {

// Collects all ops of a terminating workload.
std::vector<MemOp> drain(Workload& w, int limit = 100000) {
  std::vector<MemOp> ops;
  while (auto op = w.next()) {
    ops.push_back(*op);
    if (--limit == 0) ADD_FAILURE() << "workload did not terminate";
    if (limit == 0) break;
  }
  return ops;
}

InMemoryAnalyticsConfig ima_tiny() {
  InMemoryAnalyticsConfig cfg;
  cfg.dataset_pages = 8;
  cfg.working_set_pages = 32;
  cfg.iterations = 3;
  return cfg;
}

TEST(InMemoryAnalyticsTest, RejectsBadConfig) {
  InMemoryAnalyticsConfig cfg;
  EXPECT_THROW(InMemoryAnalytics{cfg}, std::invalid_argument);
}

TEST(InMemoryAnalyticsTest, PhaseSequenceSingleRun) {
  InMemoryAnalytics w(ima_tiny());
  const auto ops = drain(w);

  ASSERT_GE(ops.size(), 5u);
  EXPECT_EQ(ops[0].kind, MemOp::Kind::kRegisterFile);
  EXPECT_EQ(ops[1].kind, MemOp::Kind::kMarker);
  EXPECT_EQ(ops[1].label, "run:1:start");
  EXPECT_EQ(ops[2].kind, MemOp::Kind::kFileRead);
  EXPECT_EQ(ops[2].touches, 8u);
  EXPECT_EQ(ops[3].kind, MemOp::Kind::kAllocRegion);
  EXPECT_EQ(ops[3].pages, 32u);
  // Init = sequential write of the whole model.
  EXPECT_EQ(ops[4].kind, MemOp::Kind::kTouchWindow);
  EXPECT_TRUE(ops[4].write);
  EXPECT_EQ(ops[4].touches, 32u);

  // 3 iterations of (scan, update), then done marker, then free.
  int scans = 0, updates = 0;
  bool done_marker = false, freed = false;
  for (std::size_t i = 5; i < ops.size(); ++i) {
    if (ops[i].kind == MemOp::Kind::kTouchWindow) {
      (ops[i].pattern == AccessPattern::kZipf ? updates : scans)++;
    }
    if (ops[i].kind == MemOp::Kind::kMarker && ops[i].label == "run:1:done") {
      done_marker = true;
    }
    if (ops[i].kind == MemOp::Kind::kFreeRegion) freed = true;
  }
  EXPECT_EQ(scans, 3);
  EXPECT_EQ(updates, 3);
  EXPECT_TRUE(done_marker);
  EXPECT_TRUE(freed);
}

TEST(InMemoryAnalyticsTest, TwoRunsWithSleepBetween) {
  auto cfg = ima_tiny();
  cfg.runs = 2;
  cfg.sleep_between_runs = 5 * kSecond;
  InMemoryAnalytics w(cfg);
  const auto ops = drain(w);

  int sleeps = 0, run_markers = 0, frees = 0, file_reads = 0;
  for (const auto& op : ops) {
    if (op.kind == MemOp::Kind::kSleep) {
      ++sleeps;
      EXPECT_EQ(op.duration, 5 * kSecond);
    }
    if (op.kind == MemOp::Kind::kMarker &&
        op.label.find(":done") != std::string::npos) {
      ++run_markers;
    }
    if (op.kind == MemOp::Kind::kFreeRegion) ++frees;
    if (op.kind == MemOp::Kind::kFileRead) ++file_reads;
  }
  EXPECT_EQ(sleeps, 1);
  EXPECT_EQ(run_markers, 2);
  EXPECT_EQ(frees, 2);
  EXPECT_EQ(file_reads, 2);  // each run re-reads its dataset
}

TEST(InMemoryAnalyticsTest, ScanWritePeriodAlternatesWrites) {
  auto cfg = ima_tiny();
  cfg.iterations = 4;
  cfg.scan_write_period = 2;
  InMemoryAnalytics w(cfg);
  std::vector<bool> scan_writes;
  for (const auto& op : drain(w)) {
    if (op.kind == MemOp::Kind::kTouchWindow &&
        op.pattern == AccessPattern::kSequential && op.touches != 32u) {
      scan_writes.push_back(op.write);
    }
  }
  ASSERT_EQ(scan_writes.size(), 4u);
  EXPECT_FALSE(scan_writes[0]);
  EXPECT_TRUE(scan_writes[1]);
  EXPECT_FALSE(scan_writes[2]);
  EXPECT_TRUE(scan_writes[3]);
}

TEST(InMemoryAnalyticsTest, ResetReplaysIdentically) {
  InMemoryAnalytics w(ima_tiny());
  const auto first = drain(w);
  w.reset();
  const auto second = drain(w);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].kind, second[i].kind) << "op " << i;
    EXPECT_EQ(first[i].label, second[i].label) << "op " << i;
  }
}

GraphAnalyticsConfig ga_tiny() {
  GraphAnalyticsConfig cfg;
  cfg.edge_file_pages = 8;
  cfg.graph_pages = 48;
  cfg.vertex_pages = 8;
  cfg.iterations = 2;
  return cfg;
}

TEST(GraphAnalyticsTest, RejectsBadConfig) {
  GraphAnalyticsConfig cfg;
  EXPECT_THROW(GraphAnalytics{cfg}, std::invalid_argument);
}

TEST(GraphAnalyticsTest, BuildPhaseComesBeforeIterations) {
  GraphAnalytics w(ga_tiny());
  const auto ops = drain(w);
  std::size_t build_done = 0, first_iter = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == MemOp::Kind::kMarker && ops[i].label == "build:done") {
      build_done = i;
    }
    if (ops[i].kind == MemOp::Kind::kMarker &&
        ops[i].label == "iter:1:done" && first_iter == 0) {
      first_iter = i;
    }
  }
  EXPECT_GT(build_done, 0u);
  EXPECT_GT(first_iter, build_done);
}

TEST(GraphAnalyticsTest, BuildUsesFastTouches) {
  auto cfg = ga_tiny();
  cfg.build_touch_compute = 100;
  cfg.iter_touch_compute = 9999;
  GraphAnalytics w(cfg);
  bool saw_build_touch = false;
  for (const auto& op : drain(w)) {
    if (op.kind == MemOp::Kind::kTouchWindow && op.per_touch_compute == 100 &&
        op.touches == 48u) {
      saw_build_touch = true;
      EXPECT_TRUE(op.write);
    }
  }
  EXPECT_TRUE(saw_build_touch);
}

TEST(GraphAnalyticsTest, ScatterIsZipfOverVertices) {
  GraphAnalytics w(ga_tiny());
  int scatters = 0;
  for (const auto& op : drain(w)) {
    if (op.kind == MemOp::Kind::kTouchWindow &&
        op.pattern == AccessPattern::kZipf) {
      ++scatters;
      EXPECT_EQ(op.window_pages, 8u);
      EXPECT_EQ(op.touches, 16u);  // two updates per vertex page
      EXPECT_TRUE(op.write);
    }
  }
  EXPECT_EQ(scatters, 2);
}

TEST(GraphAnalyticsTest, FreesBothRegionsAtEnd) {
  GraphAnalytics w(ga_tiny());
  int frees = 0;
  for (const auto& op : drain(w)) {
    if (op.kind == MemOp::Kind::kFreeRegion) ++frees;
  }
  EXPECT_EQ(frees, 2);
}

TEST(ScriptWorkloadTest, PlaysOpsInOrderWithRepeats) {
  std::vector<MemOp> ops = {MemOp::marker("a"), MemOp::marker("b")};
  ScriptWorkload w(ops, 2);
  std::vector<std::string> seen;
  while (auto op = w.next()) seen.push_back(op->label);
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b", "a", "b"}));
  w.reset();
  EXPECT_EQ(w.next()->label, "a");
}

TEST(ScriptWorkloadTest, EmptyScriptFinishesImmediately) {
  ScriptWorkload w({}, 0);
  EXPECT_FALSE(w.next().has_value());
}

}  // namespace
}  // namespace smartmem::workloads
