#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/time_series.hpp"

namespace smartmem {
namespace {

TEST(CsvTest, BasicRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a", "b"});
  csv.field(std::uint64_t{1}).field(2.5).end_row();
  EXPECT_EQ(out.str(), "a,b\n1,2.5\n");
}

TEST(CsvTest, QuotingOfSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  EXPECT_EQ(out.str(),
            "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(CsvTest, FileOutput) {
  const std::string path = ::testing::TempDir() + "/smartmem_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.row({"x"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::remove(path.c_str());
}

TEST(CsvTest, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-zz/file.csv"), std::runtime_error);
}

TEST(CsvTest, SecondWriterOnSamePathFailsLoudly) {
  // Single-writer-per-file contract: two live writers on one path would
  // interleave rows, so the second constructor must throw instead.
  const std::string path = ::testing::TempDir() + "/smartmem_csv_dup.csv";
  {
    CsvWriter first(path);
    first.row({"a"});
    EXPECT_THROW(CsvWriter second(path), std::logic_error);
  }
  // Once the first writer is destroyed the path is claimable again.
  {
    CsvWriter again(path);
    again.row({"b"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "b");
  std::remove(path.c_str());
}

TEST(CsvTest, FailedOpenDoesNotLeakPathClaim) {
  const std::string path = "/nonexistent-dir-zz/file.csv";
  EXPECT_THROW(CsvWriter{path}, std::runtime_error);
  // The claim must have been rolled back, so the error stays runtime_error
  // (bad path), not logic_error (duplicate writer).
  EXPECT_THROW(CsvWriter{path}, std::runtime_error);
}

TEST(CsvTest, SeriesDump) {
  SeriesSet set;
  set.series("s1").push(kSecond, 10.0);
  set.series("s1").push(2 * kSecond, 20.0);
  const std::string path = ::testing::TempDir() + "/smartmem_series_test.csv";
  write_series_csv(path, set);
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("series,time_s,value"), std::string::npos);
  EXPECT_NE(all.find("s1,1,10"), std::string::npos);
  EXPECT_NE(all.find("s1,2,20"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace smartmem
