// Property sweep over the O(changed-VMs) smart-alloc engine (DESIGN §12):
// for any stream of samples in which only a dirty subset changes per round,
// decide_incremental() folded onto the previous output must land on exactly
// the targets compute() derives from the full vector — including through
// Eq. 2 renormalization rounds and VM-set changes — and the folded output
// must keep the Eq. 1/2 sum invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "mm/history.hpp"
#include "mm/smart_policy.hpp"

namespace smartmem::mm {
namespace {

struct SweepParams {
  double p_percent;
  PageCount total_tmem;
  std::uint64_t seed;
};

class IncrementalSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(IncrementalSweep, MatchesClassicComputeExactly) {
  const auto [p, total, seed] = GetParam();
  SmartPolicy classic(SmartPolicyConfig{p, 0});
  SmartPolicy incremental(SmartPolicyConfig{p, 0});
  ASSERT_TRUE(incremental.supports_incremental());

  StatsHistory classic_hist;
  StatsHistory inc_hist;
  PolicyContext classic_ctx;
  classic_ctx.total_tmem = total;
  classic_ctx.history = &classic_hist;
  PolicyContext inc_ctx;
  inc_ctx.total_tmem = total;
  inc_ctx.history = &inc_hist;

  Rng rng(seed);
  constexpr std::size_t kBaseVms = 16;

  hyper::MemStats s;
  s.total_tmem = total;
  for (std::size_t i = 0; i < kBaseVms; ++i) {
    hyper::VmMemStats vm;
    vm.vm_id = static_cast<VmId>(i + 1);
    vm.mm_target = total / kBaseVms;
    vm.tmem_used = total / kBaseVms;
    s.vm.push_back(vm);
  }
  s.vm_count = static_cast<std::uint32_t>(s.vm.size());

  // The incremental path's folded view of the targets.
  std::map<VmId, PageCount> folded;

  bool vm_set_changed = true;  // first round: everything is dirty
  // Entries whose mm_target the previous round's decision rewrote: the
  // hypervisor applies them, so the next sample reports them changed and
  // the delta view marks them dirty.
  std::vector<std::size_t> carry;
  for (int round = 0; round < 400; ++round) {
    // Mutate a small random subset; occasionally add a VM (sorted insert)
    // to exercise the VM-set invalidation path.
    std::vector<std::size_t> dirty = carry;
    if (round == 150 || round == 300) {
      hyper::VmMemStats vm;
      vm.vm_id = static_cast<VmId>(100 + round);
      vm.tmem_used = rng.uniform(total / kBaseVms);
      s.vm.push_back(vm);
      s.vm_count = static_cast<std::uint32_t>(s.vm.size());
      vm_set_changed = true;
    }
    const std::size_t n_dirty = 1 + rng.uniform(3);
    for (std::size_t k = 0; k < n_dirty; ++k) {
      const std::size_t i = rng.uniform(s.vm.size());
      auto& vm = s.vm[i];
      vm.puts_total = rng.uniform(200);
      vm.puts_succ = vm.puts_total - rng.uniform(vm.puts_total + 1);
      vm.cumul_puts_failed += vm.puts_total - vm.puts_succ;
      vm.tmem_used = rng.uniform(total + 1);
      dirty.push_back(i);
    }
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    if (vm_set_changed) {
      dirty.resize(s.vm.size());
      for (std::size_t i = 0; i < s.vm.size(); ++i) dirty[i] = i;
      vm_set_changed = false;
    }
    s.seq = static_cast<std::uint64_t>(round) + 1;

    // Classic: full-vector compute.
    classic_hist.record(s);
    const hyper::MmOut want = classic.compute(s, classic_ctx);

    // Incremental: fold only the changed targets.
    inc_hist.record(s);
    const std::vector<hyper::MmTarget> changed =
        incremental.decide_incremental(s, dirty, inc_ctx);
    for (const auto& t : changed) folded[t.vm_id] = t.mm_target;

    // Exact equality, round for round: suppression (empty `changed`) is
    // only correct because the folded state already equals compute().
    ASSERT_EQ(want.size(), s.vm.size()) << "round " << round;
    PageCount sum = 0;
    for (const auto& t : want) {
      const auto it = folded.find(t.vm_id);
      const PageCount got =
          it != folded.end() ? it->second : hyper::VmMemStats{}.mm_target;
      ASSERT_EQ(got, t.mm_target)
          << "round " << round << " vm " << t.vm_id << " (p=" << p << ")";
      sum += t.mm_target;
      ASSERT_LE(t.mm_target, total);
    }
    // Eq. 1/2: one page of floor-rounding slack per VM.
    ASSERT_LE(sum, total + s.vm.size()) << "round " << round;

    // Both streams see the applied targets as the next round's state; any
    // entry the application changed is dirty in the next sample.
    carry.clear();
    for (const auto& t : want) {
      for (std::size_t i = 0; i < s.vm.size(); ++i) {
        if (s.vm[i].vm_id != t.vm_id) continue;
        if (s.vm[i].mm_target != t.mm_target) {
          s.vm[i].mm_target = t.mm_target;
          carry.push_back(i);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalSweep,
    ::testing::Values(SweepParams{0.25, 1u << 16, 1},
                      SweepParams{0.75, 1u << 18, 2},
                      SweepParams{2.0, 1u << 20, 3},
                      SweepParams{6.0, 100000, 4},
                      SweepParams{0.75, 12345, 5}));

// Suppression correctness in isolation: rounds in which nothing decision-
// relevant changes must return an empty vector (the MM sends nothing), and
// the folded state must still track compute().
TEST(IncrementalSuppression, QuietRoundsReturnEmpty) {
  SmartPolicy policy(SmartPolicyConfig{});
  StatsHistory hist;
  PolicyContext ctx;
  ctx.total_tmem = 1u << 16;
  ctx.history = &hist;

  hyper::MemStats s;
  s.total_tmem = ctx.total_tmem;
  for (VmId vm = 1; vm <= 4; ++vm) {
    hyper::VmMemStats v;
    v.vm_id = vm;
    v.mm_target = ctx.total_tmem / 4;
    v.tmem_used = ctx.total_tmem / 4;
    s.vm.push_back(v);
  }
  s.vm_count = 4;

  std::vector<std::size_t> all = {0, 1, 2, 3};
  s.seq = 1;
  hist.record(s);
  policy.decide_incremental(s, all, ctx);

  // Counter churn that trips no Algorithm 4 condition: successful puts,
  // usage pinned to the target.
  for (int round = 2; round <= 20; ++round) {
    s.vm[static_cast<std::size_t>(round) % 4].puts_total += 10;
    s.vm[static_cast<std::size_t>(round) % 4].puts_succ += 10;
    s.seq = static_cast<std::uint64_t>(round);
    hist.record(s);
    const auto out = policy.decide_incremental(
        s, {static_cast<std::size_t>(round) % 4}, ctx);
    EXPECT_TRUE(out.empty()) << "round " << round;
  }
}

}  // namespace
}  // namespace smartmem::mm
