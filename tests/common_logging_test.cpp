#include "common/logging.hpp"

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace smartmem::log {
namespace {

SimTime fixed_clock(const void* ctx) {
  return *static_cast<const SimTime*>(ctx);
}

class LoggingFormatTest : public ::testing::Test {
 protected:
  void TearDown() override { set_sim_clock(nullptr, nullptr); }
};

TEST_F(LoggingFormatTest, BareLineWithoutClockOrComponent) {
  EXPECT_FALSE(has_sim_clock());
  EXPECT_EQ(format_line(Level::kWarn, Component::kGeneric, "msg"),
            "[warn] msg");
}

TEST_F(LoggingFormatTest, ComponentTagOnly) {
  EXPECT_EQ(format_line(Level::kError, Component::kHyper, "bad target"),
            "[hyper] [error] bad target");
}

TEST_F(LoggingFormatTest, SimTimeStampOnly) {
  const SimTime t = 412 * kSecond + 3 * kMillisecond;
  set_sim_clock(&fixed_clock, &t);
  EXPECT_TRUE(has_sim_clock());
  EXPECT_EQ(format_line(Level::kInfo, Component::kGeneric, "msg"),
            "[t=412.003s] [info] msg");
}

TEST_F(LoggingFormatTest, SimTimeStampAndComponentTag) {
  const SimTime t = 412 * kSecond + 3 * kMillisecond;
  set_sim_clock(&fixed_clock, &t);
  EXPECT_EQ(format_line(Level::kWarn, Component::kHyper, "target ignored"),
            "[t=412.003s hyper] [warn] target ignored");
}

TEST_F(LoggingFormatTest, ClockClearRestoresBareFormat) {
  const SimTime t = kSecond;
  set_sim_clock(&fixed_clock, &t);
  set_sim_clock(nullptr, nullptr);
  EXPECT_FALSE(has_sim_clock());
  EXPECT_EQ(format_line(Level::kWarn, Component::kMm, "m"), "[mm] [warn] m");
}

TEST_F(LoggingFormatTest, ComponentNames) {
  EXPECT_STREQ(component_name(Component::kSim), "sim");
  EXPECT_STREQ(component_name(Component::kTmem), "tmem");
  EXPECT_STREQ(component_name(Component::kHyper), "hyper");
  EXPECT_STREQ(component_name(Component::kGuest), "guest");
  EXPECT_STREQ(component_name(Component::kComm), "comm");
  EXPECT_STREQ(component_name(Component::kMm), "mm");
  EXPECT_STREQ(component_name(Component::kCore), "core");
  EXPECT_STREQ(component_name(Component::kObs), "obs");
}

}  // namespace
}  // namespace smartmem::log
