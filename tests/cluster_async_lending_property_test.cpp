// Fault-model battery for the asynchronous lending fabric (DESIGN §15).
//
// Part 1 is a seeded fuzz over the fault grid (loss x reorder x outage x
// cache capacity x seed) driving a 3-node immediate rig through random
// put/get/flush/release/recall traffic against a model map, asserting the
// broker invariants the ISSUE names: lease-depth conservation (donor lent
// frames == borrower index == model), no page loss or duplication (every
// owned key serves exactly the model payload; a recalled persistent page
// reappears in the borrower's own store), and that every borrow terminates
// as placed, failed, or recalled — which the fabric's counter identities
// (requests == responses + timeouts, timeouts fully attributed to a fault,
// attempts fully attributed to success/retry/give-up) make checkable.
//
// Part 2 re-proves thread-count invariance with the async fabric in the
// loop: a lending-heavy fleet run (with and without wire faults) must be
// byte-identical at --sim-threads 1, 2 and 4.
//
// Part 3 is the recall-vs-in-flight-borrow regression: a quota shrink that
// recalls pages while borrow completion timers are still pending must not
// crash, strand in-flight accounting, or leave a stale cache entry.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/fleet.hpp"
#include "cluster/lending.hpp"
#include "common/rng.hpp"
#include "common/strfmt.hpp"
#include "comm/topology.hpp"
#include "hyper/hypervisor.hpp"
#include "sim/simulator.hpp"
#include "tmem/store.hpp"

namespace smartmem::cluster {
namespace {

using tmem::PoolType;

constexpr VmId kVm = 1;
constexpr PageCount kPhys = 64;

hyper::HypervisorConfig hyp_config(PageCount pages) {
  hyper::HypervisorConfig cfg;
  cfg.total_tmem_pages = pages;
  return cfg;
}

/// Three-node async rig: node 0 borrows, nodes 1 and 2 donate half their
/// frames each.
struct FuzzRig {
  FuzzRig(const comm::ClusterTopology& topo, const AsyncLendingConfig& acfg)
      : borrower(sim, hyp_config(kPhys)),
        donor1(sim, hyp_config(kPhys)),
        donor2(sim, hyp_config(kPhys)),
        broker({&borrower, &donor1, &donor2}) {
    for (hyper::Hypervisor* h : {&borrower, &donor1, &donor2}) {
      h->register_vm(kVm);
    }
    borrower.set_remote_tmem(broker.port(0));
    donor1.set_remote_tmem(broker.port(1));
    donor2.set_remote_tmem(broker.port(2));
    donor1.set_node_quota(kPhys / 2);
    donor2.set_node_quota(kPhys / 2);
    broker.enable_async(acfg, topo);
    for (NodeId n = 0; n < 3; ++n) broker.attach_sim(n, &sim);
  }

  sim::Simulator sim;
  hyper::Hypervisor borrower;
  hyper::Hypervisor donor1;
  hyper::Hypervisor donor2;
  LendingBroker broker;
};

struct FaultCase {
  double loss;
  double reorder;
  bool outage;
  PageCount cache;
};

/// The fabric's attempt bookkeeping must attribute every frame exactly
/// once, whatever the fault mix did to the run.
void check_counter_identities(const LendFabricStats& t) {
  ASSERT_EQ(t.requests, t.responses + t.timeouts);
  ASSERT_EQ(t.timeouts, t.lost_requests + t.lost_responses +
                            t.late_responses + t.outage_drops);
  ASSERT_EQ(t.requests, t.responses + t.retries + t.give_ups);
}

void fuzz_run(const FaultCase& fc, std::uint64_t seed) {
  SCOPED_TRACE(strfmt("loss=%.1f reorder=%.1f outage=%d cache=%llu seed=%llu",
                      fc.loss, fc.reorder, fc.outage ? 1 : 0,
                      static_cast<unsigned long long>(fc.cache),
                      static_cast<unsigned long long>(seed)));
  comm::ClusterTopology topo;
  topo.internode_lend_req.faults.loss_rate = fc.loss;
  topo.internode_lend_resp.faults.loss_rate = fc.loss / 2.0;
  topo.internode_lend_resp.faults.reorder_rate = fc.reorder;
  if (fc.outage) {
    topo.internode_lend_req.faults.down_from = 1 * kMillisecond;
    topo.internode_lend_req.faults.down_until = 5 * kMillisecond;
  }
  AsyncLendingConfig acfg;
  acfg.enabled = true;
  acfg.cache_pages = fc.cache;
  FuzzRig rig(topo, acfg);

  // Model of what the broker must own: borrowed key -> payload.
  std::map<RemoteKey, tmem::PagePayload> model;
  Rng rng(seed);

  auto random_key = [&rng] {
    const PoolType type =
        rng.chance(0.5) ? PoolType::kPersistent : PoolType::kEphemeral;
    return RemoteKey{kVm, type, 1 + rng.uniform(3),
                     static_cast<std::uint32_t>(rng.uniform(8))};
  };
  auto check_conservation = [&] {
    // Lease-depth conservation: every model entry is owned, backed by
    // exactly one donor frame, and nothing else is.
    ASSERT_EQ(rig.broker.borrowed_total(0), model.size());
    ASSERT_EQ(rig.donor1.lent_pages() + rig.donor2.lent_pages(),
              model.size());
  };

  for (int op = 0; op < 200; ++op) {
    const std::uint64_t kind = rng.uniform(100);
    if (kind < 50) {  // put (fresh placement or replacement)
      const RemoteKey key = random_key();
      const tmem::PagePayload payload = rng.next();
      const bool existed = model.contains(key);
      const bool ok = rig.broker.port(0)->remote_put(
          kVm, key.type, key.object, key.index, payload);
      if (ok) {
        model[key] = payload;
      } else if (existed) {
        // A replacement lost to the fabric drops the whole entry so owns()
        // never vouches for a stale payload.
        model.erase(key);
      }
      ASSERT_EQ(rig.broker.port(0)->owns(kVm, key.type, key.object, key.index),
                model.contains(key));
    } else if (kind < 70) {  // get: exact payload, ephemeral consumed
      const RemoteKey key = random_key();
      const auto got =
          rig.broker.port(0)->remote_get(kVm, key.type, key.object, key.index);
      auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_TRUE(got.has_value());  // persistent gets may never fail
        ASSERT_EQ(*got, it->second);   // no corruption, no duplication
        if (key.type == PoolType::kEphemeral) model.erase(it);
      } else {
        ASSERT_FALSE(got.has_value());
      }
    } else if (kind < 80) {  // flush one page
      const RemoteKey key = random_key();
      const bool ok = rig.broker.port(0)->remote_flush(kVm, key.type,
                                                       key.object, key.index);
      ASSERT_EQ(ok, model.contains(key));
      model.erase(key);
    } else if (kind < 85) {  // flush a whole object
      const PoolType type =
          rng.chance(0.5) ? PoolType::kPersistent : PoolType::kEphemeral;
      const std::uint64_t object = 1 + rng.uniform(3);
      const PageCount flushed =
          rig.broker.port(0)->remote_flush_object(kVm, type, object);
      PageCount expected = 0;
      for (auto it = model.begin(); it != model.end();) {
        if (it->first.type == type && it->first.object == object) {
          it = model.erase(it);
          ++expected;
        } else {
          ++it;
        }
      }
      ASSERT_EQ(flushed, expected);
    } else if (kind < 90) {  // quota-style release of ephemeral borrows
      const PageCount max = 1 + rng.uniform(8);
      const PageCount released = rig.broker.port(0)->release_borrowed(max);
      // Mirror the broker: ephemeral-typed entries die in key order.
      PageCount expected = 0;
      for (auto it = model.begin(); it != model.end() && expected < max;) {
        if (it->first.type == PoolType::kEphemeral) {
          it = model.erase(it);
          ++expected;
        } else {
          ++it;
        }
      }
      ASSERT_EQ(released, expected);
    } else if (kind < 95) {  // donor-side recall
      const NodeId donor = rng.chance(0.5) ? 1 : 2;
      rig.broker.recall_lent(donor, 1 + rng.uniform(8));
      for (auto it = model.begin(); it != model.end();) {
        const RemoteKey& key = it->first;
        if (rig.broker.port(0)->owns(kVm, key.type, key.object, key.index)) {
          ++it;
          continue;
        }
        if (key.type == PoolType::kPersistent) {
          // A recalled persistent page must have migrated home intact —
          // recall may drop only ephemeral (victim-cache) entries.
          const auto local =
              rig.borrower.frontswap_get(kVm, key.object, key.index);
          ASSERT_TRUE(local.has_value());
          ASSERT_EQ(*local, it->second);
        }
        it = model.erase(it);
      }
    } else {  // let simulated time pass (crosses the outage window)
      rig.sim.run_until(rig.sim.now() +
                        static_cast<SimTime>(rng.uniform_range(50, 500)) *
                            kMicrosecond);
    }
    if (op % 16 == 0) {
      check_conservation();
      check_counter_identities(rig.broker.fabric()->totals());
    }
  }

  // Every borrow terminated: drain the completion timers, then the books
  // must balance exactly.
  rig.sim.run();
  ASSERT_EQ(rig.broker.fabric()->in_flight(0), 0u);
  check_conservation();
  check_counter_identities(rig.broker.fabric()->totals());
  const LendFabricStats t = rig.broker.fabric()->totals();
  if (fc.loss >= 1.0) {
    ASSERT_EQ(t.responses, 0u);  // nothing ever crossed a dead wire
    ASSERT_TRUE(model.empty());
  }
}

TEST(AsyncLendingPropertyTest, FaultGridFuzzPreservesBrokerInvariants) {
  const std::vector<FaultCase> grid = {
      {0.0, 0.0, false, 0},  {0.0, 0.0, false, 8}, {0.3, 0.0, false, 8},
      {0.3, 0.5, false, 0},  {0.3, 0.5, true, 8},  {1.0, 0.0, false, 8},
      {0.0, 0.5, true, 0},   {1.0, 0.5, true, 8},
  };
  for (const FaultCase& fc : grid) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      fuzz_run(fc, seed);
      if (HasFatalFailure()) return;
    }
  }
}

// ---- Part 2: thread-count invariance with the fabric in the loop ----------

std::string serialize(const FleetRunResult& r) {
  std::string out = strfmt(
      "makespan=%.9f failed=%llu total=%llu succ=%llu nodeb=%llu rackb=%llu\n",
      r.makespan_s, static_cast<unsigned long long>(r.aggregate_failed_puts),
      static_cast<unsigned long long>(r.puts_total),
      static_cast<unsigned long long>(r.puts_succ),
      static_cast<unsigned long long>(r.node_control_bytes),
      static_cast<unsigned long long>(r.rack_control_bytes));
  out += strfmt(
      "borrow=%llu bfail=%llu bhits=%llu bmiss=%llu recalls=%llu brepl=%llu\n",
      static_cast<unsigned long long>(r.borrow_placements),
      static_cast<unsigned long long>(r.lending_failed_placements),
      static_cast<unsigned long long>(r.borrow_hits),
      static_cast<unsigned long long>(r.borrow_misses),
      static_cast<unsigned long long>(r.lending_recalls),
      static_cast<unsigned long long>(r.lending_failed_replacements));
  out += strfmt(
      "freq=%llu fret=%llu ftmo=%llu fgup=%llu fcng=%llu ffbk=%llu fcan=%llu\n",
      static_cast<unsigned long long>(r.fabric_requests),
      static_cast<unsigned long long>(r.fabric_retries),
      static_cast<unsigned long long>(r.fabric_timeouts),
      static_cast<unsigned long long>(r.fabric_give_ups),
      static_cast<unsigned long long>(r.fabric_congestion_drops),
      static_cast<unsigned long long>(r.fabric_get_fallbacks),
      static_cast<unsigned long long>(r.fabric_cancelled_timers));
  out += strfmt(
      "chit=%llu cmiss=%llu cinv=%llu prtt=%.9f grtt=%.9f gcnt=%llu\n",
      static_cast<unsigned long long>(r.cache_hits),
      static_cast<unsigned long long>(r.cache_misses),
      static_cast<unsigned long long>(r.cache_invalidations), r.put_rtt_mean_us,
      r.get_rtt_mean_us, static_cast<unsigned long long>(r.get_rtt_count));
  return out;
}

FleetExperimentConfig lending_fleet(std::size_t sim_threads, bool flaky) {
  FleetExperimentConfig cfg;
  cfg.nodes = 4;
  cfg.vms_per_node = 4;
  cfg.scale = 0.0625;
  cfg.seed = 42;
  cfg.delta = true;
  cfg.lending_heavy = true;
  cfg.lending_demand_weighted = true;
  cfg.lending_async.enabled = true;
  cfg.lending_async.cache_pages = 64;
  if (flaky) {
    cfg.lend_fault.loss_rate = 0.05;
    cfg.lend_fault.reorder_rate = 0.10;
  }
  cfg.sim_threads = sim_threads;
  return cfg;
}

TEST(AsyncLendingPropertyTest, FleetThreadCountInvisibleWithAsyncFabric) {
  const FleetRunResult r1 = run_fleet_scenario(lending_fleet(1, false));
  // The run must actually exercise the fabric for the comparison to mean
  // anything.
  ASSERT_GT(r1.borrow_placements, 0u);
  ASSERT_GT(r1.fabric_requests, 0u);
  const std::string base = serialize(r1);
  EXPECT_EQ(serialize(run_fleet_scenario(lending_fleet(2, false))), base);
  EXPECT_EQ(serialize(run_fleet_scenario(lending_fleet(4, false))), base);
}

TEST(AsyncLendingPropertyTest, FleetThreadCountInvisibleUnderWireFaults) {
  const std::string base = serialize(run_fleet_scenario(lending_fleet(1, true)));
  EXPECT_EQ(serialize(run_fleet_scenario(lending_fleet(4, true))), base);
}

// ---- Part 3: recall-on-quota-shrink races an in-flight borrow -------------

TEST(AsyncLendingPropertyTest, RecallWhileBorrowTimersInFlight) {
  AsyncLendingConfig acfg;
  acfg.enabled = true;
  acfg.cache_pages = 8;
  FuzzRig rig((comm::ClusterTopology()), acfg);

  // Several placements leave completion timers pending on the fabric.
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(rig.broker.port(0)->remote_put(kVm, PoolType::kPersistent, 1,
                                               i, 100 + i));
  }
  ASSERT_GT(rig.broker.fabric()->in_flight(0), 0u);

  // Quota shrink on both donors recalls everything mid-flight.
  rig.donor1.set_node_quota(kPhys);
  rig.donor2.set_node_quota(kPhys);
  const PageCount recalled = rig.broker.recall_lent(1, kPhys) +
                             rig.broker.recall_lent(2, kPhys);
  EXPECT_EQ(recalled, 4u);
  EXPECT_EQ(rig.broker.borrowed_total(0), 0u);
  EXPECT_EQ(rig.donor1.lent_pages() + rig.donor2.lent_pages(), 0u);
  // The borrower cache cannot outlive the entries it mirrored.
  EXPECT_EQ(rig.broker.fabric()->cache(0).size(), 0u);

  // The stale completion timers fire harmlessly and the window drains.
  rig.sim.run();
  EXPECT_EQ(rig.broker.fabric()->in_flight(0), 0u);

  // Recalled pages migrated home intact.
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto local = rig.borrower.frontswap_get(kVm, 1, i);
    ASSERT_TRUE(local.has_value());
    EXPECT_EQ(*local, 100u + i);
  }
}

}  // namespace
}  // namespace smartmem::cluster
