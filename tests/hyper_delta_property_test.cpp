// Property tests for the DESIGN §12 delta codecs: a receiver that folds
// delta-encoded control messages must be byte-equal to one fed the full
// vectors — exactly when no messages are lost, and within one resync
// cadence of recovery when the channel loses, reorders or duplicates.
// A broken chain may only ever *delay* the view (drop without applying);
// it must never fold a delta onto the wrong base.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "hyper/delta.hpp"
#include "hyper/hypervisor.hpp"
#include "hyper/memstats.hpp"

namespace smartmem::hyper {
namespace {

constexpr std::size_t kVms = 12;

/// Header-and-entries equality, ignoring the delta framing fields (a
/// materialized view never carries them).
void expect_stats_equal(const MemStats& got, const MemStats& want) {
  ASSERT_EQ(got.seq, want.seq);
  ASSERT_EQ(got.total_tmem, want.total_tmem);
  ASSERT_EQ(got.free_tmem, want.free_tmem);
  ASSERT_EQ(got.vm_count, want.vm_count);
  ASSERT_EQ(got.vm.size(), want.vm.size());
  for (std::size_t i = 0; i < want.vm.size(); ++i) {
    ASSERT_EQ(got.vm[i], want.vm[i]) << "entry " << i;
  }
}

/// One round of sender-side churn: a small random subset of VMs moves its
/// counters, everything else holds still — the fleet-shaped input the
/// codec exists for.
void churn(Rng& rng, MemStats& s) {
  const std::size_t dirty = 1 + rng.uniform(3);
  for (std::size_t k = 0; k < dirty; ++k) {
    auto& vm = s.vm[rng.uniform(s.vm.size())];
    vm.puts_total += rng.uniform(100);
    vm.puts_succ += rng.uniform(50);
    vm.tmem_used = rng.uniform(1000);
  }
  s.free_tmem = rng.uniform(s.total_tmem + 1);
}

MemStats initial_stats() {
  MemStats s;
  s.total_tmem = 1u << 16;
  s.free_tmem = 1u << 15;
  s.vm_count = kVms;
  for (std::size_t i = 0; i < kVms; ++i) {
    VmMemStats vm;
    vm.vm_id = static_cast<VmId>(i + 1);
    vm.tmem_used = 100 * (i + 1);
    s.vm.push_back(vm);
  }
  return s;
}

TEST(StatsDeltaProperty, LosslessChannelIsByteEqualEveryStep) {
  comm::DeltaConfig cfg;
  cfg.enabled = true;
  cfg.resync_every = 8;
  StatsDeltaEncoder enc(cfg);
  StatsDeltaView view;
  Rng rng(7);

  MemStats s = initial_stats();
  std::vector<std::size_t> dirty_idx;
  std::uint64_t delta_sends = 0;
  for (std::uint64_t seq = 1; seq <= 200; ++seq) {
    churn(rng, s);
    s.seq = seq;
    const MemStats msg = enc.encode(s);
    if (msg.delta) {
      ++delta_sends;
      // The whole point: a delta must be smaller than the full vector.
      ASSERT_LT(wire_size(msg), wire_size(s));
    }
    ASSERT_TRUE(view.apply(msg, dirty_idx));
    expect_stats_equal(view.view(), s);
    // The dirty indices the view reports are exactly the entries this
    // message changed — the MM's O(changed-VMs) feed.
    for (const std::size_t idx : dirty_idx) ASSERT_LT(idx, view.view().vm.size());
  }
  EXPECT_EQ(view.chain_breaks(), 0u);
  EXPECT_GT(delta_sends, 0u);
  // Resync cadence: every 8th send is full (and the first).
  EXPECT_EQ(enc.full_sends(), 200u / 8);
}

TEST(StatsDeltaProperty, DeltaViewMatchesFullVectorView) {
  comm::DeltaConfig delta_cfg;
  delta_cfg.enabled = true;
  delta_cfg.resync_every = 8;
  StatsDeltaEncoder enc(delta_cfg);
  StatsDeltaView delta_view;
  StatsDeltaView full_view;
  Rng rng(11);

  MemStats s = initial_stats();
  std::vector<std::size_t> scratch;
  for (std::uint64_t seq = 1; seq <= 150; ++seq) {
    churn(rng, s);
    s.seq = seq;
    ASSERT_TRUE(delta_view.apply(enc.encode(s), scratch));
    ASSERT_TRUE(full_view.apply(s, scratch));
    expect_stats_equal(delta_view.view(), full_view.view());
  }
}

TEST(StatsDeltaProperty, LossReorderDuplicationNeverDiverges) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    comm::DeltaConfig cfg;
    cfg.enabled = true;
    cfg.resync_every = 6;
    StatsDeltaEncoder enc(cfg);
    StatsDeltaView view;
    Rng rng(seed);

    MemStats s = initial_stats();
    std::vector<MemStats> wire;          // encoded messages, send order
    std::map<std::uint64_t, MemStats> truth;  // seq -> sender snapshot
    for (std::uint64_t seq = 1; seq <= 120; ++seq) {
      churn(rng, s);
      s.seq = seq;
      wire.push_back(enc.encode(s));
      truth[seq] = s;
    }

    // Faulted delivery: drop ~20%, duplicate ~10%, swap adjacent ~10%.
    std::vector<MemStats> delivered;
    for (std::size_t i = 0; i < wire.size(); ++i) {
      const std::uint64_t roll = rng.uniform(10);
      if (roll < 2) continue;  // lost
      if (roll < 3 && i + 1 < wire.size()) {  // reordered pair
        delivered.push_back(wire[i + 1]);
        delivered.push_back(wire[i]);
        ++i;
        continue;
      }
      delivered.push_back(wire[i]);
      if (roll < 4) delivered.push_back(wire[i]);  // duplicated
    }

    std::vector<std::size_t> dirty_idx;
    std::uint64_t applied = 0;
    for (const MemStats& msg : delivered) {
      if (view.apply(msg, dirty_idx)) {
        ++applied;
        // THE invariant: an applied message always reproduces the sender's
        // snapshot at that seq, faults or no faults. Loss shows up as
        // "fewer applies", never as a diverged view.
        expect_stats_equal(view.view(), truth.at(view.last_applied_seq()));
      }
    }
    // Resyncs guarantee progress: even under 20% loss some messages land.
    EXPECT_GT(applied, 0u) << "seed " << seed;

    // Recovery: once the channel heals, the view converges within one
    // resync cadence.
    for (std::uint64_t seq = 121; seq <= 121 + cfg.resync_every; ++seq) {
      churn(rng, s);
      s.seq = seq;
      view.apply(enc.encode(s), dirty_idx);
      truth[seq] = s;
    }
    expect_stats_equal(view.view(), truth.at(121 + cfg.resync_every));
  }
}

TEST(TargetsDeltaProperty, HypervisorFoldMatchesTruthUnderFaults) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    comm::DeltaConfig cfg;
    cfg.enabled = true;
    cfg.resync_every = 6;
    TargetsDeltaEncoder enc(cfg);
    Rng rng(100 + seed);

    sim::Simulator sim;
    HypervisorConfig hcfg;
    hcfg.total_tmem_pages = 1u << 16;
    Hypervisor hyp(sim, hcfg);
    MmOut full;
    for (VmId vm = 1; vm <= 8; ++vm) {
      hyp.register_vm(vm);
      full.push_back({vm, 1000});
    }

    std::vector<TargetsMsg> wire;
    std::map<std::uint64_t, MmOut> truth;
    for (std::uint64_t seq = 1; seq <= 100; ++seq) {
      const std::size_t dirty = 1 + rng.uniform(2);
      for (std::size_t k = 0; k < dirty; ++k) {
        full[rng.uniform(full.size())].mm_target = rng.uniform(1u << 16);
      }
      wire.push_back(enc.encode(seq, full, 0));
      truth[seq] = full;
    }

    // The hypervisor's materialized targets must equal the MM's full
    // vector at whatever seq the hypervisor last applied.
    auto deliver_and_check = [&](const TargetsMsg& msg) {
      hyp.apply_targets(msg);
      if (hyp.last_target_seq() == 0) return;
      const MmOut& want = truth.at(hyp.last_target_seq());
      for (const MmTarget& t : want) {
        ASSERT_EQ(hyp.target(t.vm_id), t.mm_target)
            << "seed " << seed << " seq " << hyp.last_target_seq();
      }
    };
    for (std::size_t i = 0; i < wire.size(); ++i) {
      const std::uint64_t roll = rng.uniform(10);
      if (roll < 2) continue;  // lost
      if (roll < 3 && i + 1 < wire.size()) {  // reordered pair
        deliver_and_check(wire[i + 1]);
        deliver_and_check(wire[i]);
        ++i;
        continue;
      }
      deliver_and_check(wire[i]);
      if (roll < 4) deliver_and_check(wire[i]);  // duplicated
    }

    // Heal the channel: within one resync cadence the hypervisor holds the
    // newest vector.
    for (std::uint64_t seq = 101; seq <= 101 + cfg.resync_every; ++seq) {
      full[rng.uniform(full.size())].mm_target = rng.uniform(1u << 16);
      hyp.apply_targets(enc.encode(seq, full, 0));
    }
    EXPECT_EQ(hyp.last_target_seq(), 101 + cfg.resync_every);
    for (const MmTarget& t : full) {
      EXPECT_EQ(hyp.target(t.vm_id), t.mm_target) << "seed " << seed;
    }
  }
}

TEST(TargetsDeltaProperty, ChainBreakDropsWithoutAdvancingSeq) {
  comm::DeltaConfig cfg;
  cfg.enabled = true;
  cfg.resync_every = 100;  // no resync inside the test window
  TargetsDeltaEncoder enc(cfg);

  sim::Simulator sim;
  HypervisorConfig hcfg;
  hcfg.total_tmem_pages = 1u << 12;
  Hypervisor hyp(sim, hcfg);
  hyp.register_vm(1);
  hyp.register_vm(2);

  MmOut full = {{1, 100}, {2, 100}};
  hyp.apply_targets(enc.encode(1, full, 0));  // first send: full
  ASSERT_EQ(hyp.last_target_seq(), 1u);

  full[0].mm_target = 200;
  const TargetsMsg lost = enc.encode(2, full, 0);  // delta, never delivered
  ASSERT_TRUE(lost.delta);

  full[1].mm_target = 300;
  const TargetsMsg after = enc.encode(3, full, 0);  // chains onto seq 2
  ASSERT_TRUE(after.delta);
  hyp.apply_targets(after);

  // Dropped whole: no partial fold, no seq advance, counted as a break.
  EXPECT_EQ(hyp.last_target_seq(), 1u);
  EXPECT_EQ(hyp.target(1), 100u);
  EXPECT_EQ(hyp.target(2), 100u);
  EXPECT_EQ(hyp.target_chain_breaks(), 1u);
}

TEST(QuotaDeltaProperty, SelfContainedQuotasConvergeToNewestSeq) {
  sim::Simulator sim;
  HypervisorConfig hcfg;
  hcfg.total_tmem_pages = 1u << 12;
  Hypervisor hyp(sim, hcfg);
  Rng rng(5);

  // NodeQuotaMsg is self-contained and idempotent: any delivery order with
  // any loss/duplication leaves the hypervisor at the newest-seq quota it
  // saw — per-node seq gaps (delta suppression upstream) are safe.
  std::vector<std::pair<std::uint64_t, PageCount>> msgs;
  for (std::uint64_t seq = 1; seq <= 50; ++seq) {
    msgs.push_back({seq, 100 + seq});
  }
  std::uint64_t max_delivered = 0;
  for (std::size_t n = 0; n < 200; ++n) {
    const auto& [seq, quota] = msgs[rng.uniform(msgs.size())];
    hyp.apply_node_quota(seq, quota);
    max_delivered = std::max(max_delivered, seq);
    EXPECT_EQ(hyp.last_quota_seq(), max_delivered);
    EXPECT_EQ(hyp.node_quota(), 100 + max_delivered);
  }
}

}  // namespace
}  // namespace smartmem::hyper
