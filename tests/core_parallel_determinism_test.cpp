// Cross-thread RNG/seed hygiene: fanning an experiment's seeded runs out
// over a worker pool must be invisible in the results. Every repetition
// constructs its own Rng from base_seed + rep inside run_scenario, shares
// no mutable state with its siblings, and lands in a slot indexed by
// (rep, policy) — so jobs=4 must reproduce jobs=1 bit-for-bit: durations,
// usage series, milestones, guest/hypervisor counters and the aggregated
// statistics.
#include <gtest/gtest.h>

#include "cluster/experiment.hpp"
#include "comm/channel.hpp"
#include "common/thread_pool.hpp"
#include "core/experiment.hpp"

namespace smartmem::core {
namespace {

void expect_same_series(const SeriesSet& a, const SeriesSet& b) {
  ASSERT_EQ(a.all().size(), b.all().size());
  auto bit = b.all().begin();
  for (const auto& [name, ts] : a.all()) {
    ASSERT_EQ(name, bit->first);
    const auto& sa = ts.samples();
    const auto& sb = bit->second.samples();
    ASSERT_EQ(sa.size(), sb.size()) << "series " << name;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].when, sb[i].when) << name << "[" << i << "]";
      // Bit-for-bit: no tolerance.
      EXPECT_EQ(sa[i].value, sb[i].value) << name << "[" << i << "]";
    }
    ++bit;
  }
}

void expect_same_scenario_result(const ScenarioResult& a,
                                 const ScenarioResult& b) {
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.end_time, b.end_time);
  ASSERT_EQ(a.vms.size(), b.vms.size());
  for (std::size_t v = 0; v < a.vms.size(); ++v) {
    const VmResult& va = a.vms[v];
    const VmResult& vb = b.vms[v];
    EXPECT_EQ(va.name, vb.name);
    EXPECT_EQ(va.start_time, vb.start_time);
    EXPECT_EQ(va.finish_time, vb.finish_time);
    ASSERT_EQ(va.milestones.size(), vb.milestones.size());
    for (std::size_t m = 0; m < va.milestones.size(); ++m) {
      EXPECT_EQ(va.milestones[m].label, vb.milestones[m].label);
      EXPECT_EQ(va.milestones[m].when, vb.milestones[m].when);
    }
    ASSERT_EQ(va.durations.size(), vb.durations.size());
    for (std::size_t d = 0; d < va.durations.size(); ++d) {
      EXPECT_EQ(va.durations[d].first, vb.durations[d].first);
      EXPECT_EQ(va.durations[d].second, vb.durations[d].second);
    }
    EXPECT_EQ(va.guest.touches, vb.guest.touches);
    EXPECT_EQ(va.guest.faults, vb.guest.faults);
    EXPECT_EQ(va.guest.swapins_tmem, vb.guest.swapins_tmem);
    EXPECT_EQ(va.guest.swapins_disk, vb.guest.swapins_disk);
    EXPECT_EQ(va.guest.swapouts_tmem, vb.guest.swapouts_tmem);
    EXPECT_EQ(va.guest.swapouts_disk, vb.guest.swapouts_disk);
    EXPECT_EQ(va.guest.pages_reclaimed, vb.guest.pages_reclaimed);
    EXPECT_EQ(va.vm_data.cumul_puts_total, vb.vm_data.cumul_puts_total);
    EXPECT_EQ(va.vm_data.cumul_puts_succ, vb.vm_data.cumul_puts_succ);
    EXPECT_EQ(va.vm_data.cumul_gets_hit, vb.vm_data.cumul_gets_hit);
    EXPECT_EQ(va.vm_data.cumul_flushes, vb.vm_data.cumul_flushes);
  }
  expect_same_series(a.usage, b.usage);
}

void expect_same_experiment_result(const ExperimentResult& a,
                                   const ExperimentResult& b) {
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.policy_label, b.policy_label);
  EXPECT_EQ(a.vm_names, b.vm_names);
  EXPECT_EQ(a.labels, b.labels);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  auto bit = b.cells.begin();
  for (const auto& [key, sa] : a.cells) {
    EXPECT_EQ(key, bit->first);
    const Summary& sb = bit->second;
    // Aggregation folds the runs in repetition order on one thread, so even
    // floating-point accumulation is exactly reproducible.
    EXPECT_EQ(sa.mean, sb.mean) << key.first << "/" << key.second;
    EXPECT_EQ(sa.stddev, sb.stddev) << key.first << "/" << key.second;
    EXPECT_EQ(sa.min, sb.min);
    EXPECT_EQ(sa.max, sb.max);
    EXPECT_EQ(sa.n, sb.n);
    ++bit;
  }
  expect_same_scenario_result(a.representative, b.representative);
}

std::vector<mm::PolicySpec> test_policies() {
  return {mm::PolicySpec::greedy(), mm::PolicySpec::reconf_static(),
          mm::PolicySpec::smart(1.0)};
}

class ParallelDeterminismTest
    : public ::testing::TestWithParam<ScenarioSpec (*)(double)> {};

TEST_P(ParallelDeterminismTest, Jobs4MatchesJobs1BitForBit) {
  const ScenarioSpec spec = GetParam()(0.03125);  // 32 MiB VMs: fast runs
  for (const auto& policy : test_policies()) {
    ExperimentConfig serial;
    serial.repetitions = 3;
    serial.base_seed = 11;
    serial.jobs = 1;
    ExperimentConfig parallel = serial;
    parallel.jobs = 4;

    const ExperimentResult a = run_experiment(spec, policy, serial);
    const ExperimentResult b = run_experiment(spec, policy, parallel);
    SCOPED_TRACE(spec.name + " / " + policy.label());
    expect_same_experiment_result(a, b);
  }
}

TEST_P(ParallelDeterminismTest, GridRunnerMatchesPerPolicySerialRuns) {
  const ScenarioSpec spec = GetParam()(0.03125);
  const auto policies = test_policies();

  ExperimentConfig cfg;
  cfg.repetitions = 2;
  cfg.base_seed = 5;
  cfg.jobs = 4;
  const std::vector<ExperimentResult> grid =
      run_experiments(spec, policies, cfg);

  ASSERT_EQ(grid.size(), policies.size());
  ExperimentConfig serial = cfg;
  serial.jobs = 1;
  for (std::size_t p = 0; p < policies.size(); ++p) {
    SCOPED_TRACE(spec.name + " / " + policies[p].label());
    // Deterministic policy order regardless of completion order.
    EXPECT_EQ(grid[p].policy_label, policies[p].label());
    expect_same_experiment_result(grid[p],
                                  run_experiment(spec, policies[p], serial));
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ParallelDeterminismTest,
                         ::testing::Values(&scenario1, &usemem_scenario));

// The comm channels draw from their own per-repetition Rngs, so even a
// heavily faulted control plane — random latencies, loss, duplication,
// reordering, a tiny bounded queue — must fan out bit-identically.
TEST(ParallelDeterminismTest, FaultInjectedChannelsStayDeterministic) {
  const ScenarioSpec spec = scenario1(0.03125);
  NodeConfig cfg = scaled_node_defaults(0.03125);
  for (comm::ChannelConfig* ch : {&cfg.comm.uplink, &cfg.comm.downlink}) {
    ch->latency = comm::LatencySpec::uniform(kMillisecond, 20 * kMillisecond);
    ch->faults.loss_rate = 0.05;
    ch->faults.duplication_rate = 0.05;
    ch->faults.reorder_rate = 0.2;
    ch->faults.reorder_extra = 50 * kMillisecond;
    ch->queue_capacity = 2;
    ch->queue_policy = comm::QueuePolicy::kDropOldest;
  }

  ExperimentConfig serial;
  serial.repetitions = 3;
  serial.base_seed = 17;
  serial.jobs = 1;
  serial.overrides = &cfg;
  ExperimentConfig parallel = serial;
  parallel.jobs = 4;

  const ExperimentResult a =
      run_experiment(spec, mm::PolicySpec::smart(1.0), serial);
  const ExperimentResult b =
      run_experiment(spec, mm::PolicySpec::smart(1.0), parallel);
  expect_same_experiment_result(a, b);
}

void expect_same_cluster_result(const cluster::ClusterRunResult& a,
                                const cluster::ClusterRunResult& b) {
  EXPECT_EQ(a.aggregate_failed_puts, b.aggregate_failed_puts);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.gm_decisions, b.gm_decisions);
  EXPECT_EQ(a.quotas_sent, b.quotas_sent);
  EXPECT_EQ(a.borrow_placements, b.borrow_placements);
  EXPECT_EQ(a.borrow_hits, b.borrow_hits);
  EXPECT_EQ(a.recalls, b.recalls);
  EXPECT_EQ(a.peak_borrowed, b.peak_borrowed);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t n = 0; n < a.nodes.size(); ++n) {
    const cluster::ClusterNodeResult& na = a.nodes[n];
    const cluster::ClusterNodeResult& nb = b.nodes[n];
    SCOPED_TRACE("node " + std::to_string(n));
    EXPECT_EQ(na.scenario, nb.scenario);
    EXPECT_EQ(na.failed_puts, nb.failed_puts);
    EXPECT_EQ(na.puts_total, nb.puts_total);
    EXPECT_EQ(na.puts_succ, nb.puts_succ);
    EXPECT_EQ(na.runtime_s, nb.runtime_s);
    EXPECT_EQ(na.remote_puts, nb.remote_puts);
    EXPECT_EQ(na.remote_gets, nb.remote_gets);
    EXPECT_EQ(na.final_quota, nb.final_quota);
    EXPECT_EQ(na.phys_tmem, nb.phys_tmem);
  }
}

// Multi-node runs under --jobs: each cluster owns one shared simulator and
// all its channel Rngs derive purely from (seed, topology), so fanning four
// seeded 2-node cluster runs over a pool must be invisible in every counter
// of every node — including the GM and lending-broker rack-level state.
TEST(ParallelDeterminismTest, MultiNodeClusterFanOutStaysDeterministic) {
  const auto run_all = [](unsigned jobs) {
    std::vector<cluster::ClusterRunResult> out(4);
    parallel_for_each(jobs, out.size(), [&](std::size_t i) {
      cluster::ClusterExperimentConfig cfg;
      cfg.nodes = 2;
      cfg.scale = 0.03125;
      cfg.seed = 42 + i;
      out[i] = cluster::run_cluster_scenario(cfg);
    });
    return out;
  };
  const auto serial = run_all(1);
  const auto fanned = run_all(4);
  ASSERT_EQ(serial.size(), fanned.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("run " + std::to_string(i));
    expect_same_cluster_result(serial[i], fanned[i]);
  }
}

}  // namespace
}  // namespace smartmem::core
