// Table II geometry checks and scenario construction.
#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace smartmem::core {
namespace {

TEST(ScenarioTest, Scenario1GeometryMatchesTableII) {
  const ScenarioSpec s = scenario1(1.0);
  EXPECT_EQ(s.tmem_pages, pages_from_mib(1024));
  ASSERT_EQ(s.vms.size(), 3u);
  for (const auto& vm : s.vms) {
    EXPECT_EQ(vm.ram_pages, pages_from_mib(1024));
    EXPECT_EQ(vm.start_delay, 0);
    EXPECT_FALSE(vm.manual_start);
  }
  EXPECT_EQ(s.vms[0].name, "VM1");
  EXPECT_EQ(s.vms[2].name, "VM3");
}

TEST(ScenarioTest, Scenario2StaggersVm3) {
  const ScenarioSpec s = scenario2(1.0);
  EXPECT_EQ(s.tmem_pages, pages_from_mib(1024));
  for (const auto& vm : s.vms) EXPECT_EQ(vm.ram_pages, pages_from_mib(512));
  EXPECT_EQ(s.vms[0].start_delay, 0);
  EXPECT_EQ(s.vms[1].start_delay, 0);
  EXPECT_EQ(s.vms[2].start_delay, 30 * kSecond);
}

TEST(ScenarioTest, UsememGeometry) {
  const ScenarioSpec s = usemem_scenario(1.0);
  EXPECT_EQ(s.tmem_pages, pages_from_mib(384));
  for (const auto& vm : s.vms) EXPECT_EQ(vm.ram_pages, pages_from_mib(512));
  EXPECT_TRUE(s.vms[2].manual_start);
  EXPECT_FALSE(s.vms[0].manual_start);
  EXPECT_TRUE(static_cast<bool>(s.install_triggers));
}

TEST(ScenarioTest, Scenario3MixesVmSizes) {
  const ScenarioSpec s = scenario3(1.0);
  EXPECT_EQ(s.vms[0].ram_pages, pages_from_mib(512));
  EXPECT_EQ(s.vms[1].ram_pages, pages_from_mib(512));
  EXPECT_EQ(s.vms[2].ram_pages, pages_from_mib(1024));
  EXPECT_EQ(s.vms[2].start_delay, 30 * kSecond);
}

TEST(ScenarioTest, ScaleShrinksMemoryAndTime) {
  const ScenarioSpec full = scenario2(1.0);
  const ScenarioSpec quarter = scenario2(0.25);
  EXPECT_EQ(quarter.tmem_pages, full.tmem_pages / 4);
  EXPECT_EQ(quarter.vms[0].ram_pages, full.vms[0].ram_pages / 4);
  EXPECT_EQ(quarter.vms[2].start_delay, full.vms[2].start_delay / 4);
  EXPECT_DOUBLE_EQ(quarter.scale, 0.25);
}

TEST(ScenarioTest, AllScenariosEnumerated) {
  const auto all = all_scenarios(0.25);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "scenario1");
  EXPECT_EQ(all[1].name, "scenario2");
  EXPECT_EQ(all[2].name, "usemem");
  EXPECT_EQ(all[3].name, "scenario3");
}

TEST(ScenarioTest, WorkloadFactoriesProduceFreshInstances) {
  const ScenarioSpec s = scenario1(0.0625);
  auto w1 = s.vms[0].make_workload();
  auto w2 = s.vms[0].make_workload();
  ASSERT_NE(w1, nullptr);
  ASSERT_NE(w2, nullptr);
  EXPECT_NE(w1.get(), w2.get());
  EXPECT_STREQ(w1->name(), "in-memory-analytics");
}

TEST(ScenarioTest, BuildNodeScalesTimeConstants) {
  const ScenarioSpec s = scenario1(0.25);
  auto node = build_node(s, mm::PolicySpec::smart(0.75), 1);
  EXPECT_EQ(node->config().sample_interval, kSecond / 4);
  EXPECT_EQ(node->config().tmem_pages, s.tmem_pages);
  EXPECT_EQ(node->vm_count(), 3u);
}

TEST(ScenarioTest, BuildNodeJitterIsSeededAndBounded) {
  const ScenarioSpec s = scenario1(0.25);
  auto a = build_node(s, mm::PolicySpec::greedy(), 5);
  auto b = build_node(s, mm::PolicySpec::greedy(), 5);
  auto c = build_node(s, mm::PolicySpec::greedy(), 6);
  a->start();
  b->start();
  c->start();
  bool any_difference = false;
  for (VmId id : a->vm_ids()) {
    EXPECT_EQ(a->runner(id).start_time(), b->runner(id).start_time());
    EXPECT_LE(a->runner(id).start_time(), s.start_jitter_max);
    if (a->runner(id).start_time() != c->runner(id).start_time()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference) << "different seeds should jitter differently";
  a->run(kMillisecond);
  b->run(kMillisecond);
  c->run(kMillisecond);
}

}  // namespace
}  // namespace smartmem::core
