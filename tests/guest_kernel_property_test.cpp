// Property sweep over the guest kernel: random access sequences under many
// configurations must preserve the memory-accounting invariants and always
// return the exact data that was written.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/rng.hpp"
#include "guest/guest_kernel.hpp"
#include "hyper/hypervisor.hpp"

namespace smartmem::guest {
namespace {

struct KernelParams {
  PageCount tmem_pages;
  bool frontswap;
  bool exclusive_gets;
  std::uint32_t zero_write_period;
  std::uint64_t seed;
};

class GuestKernelSweep : public ::testing::TestWithParam<KernelParams> {};

TEST_P(GuestKernelSweep, RandomAccessPreservesInvariants) {
  const KernelParams params = GetParam();
  sim::Simulator sim;
  hyper::HypervisorConfig hcfg;
  hcfg.total_tmem_pages = params.tmem_pages;
  hyper::Hypervisor hyp(sim, hcfg);
  hyp.register_vm(1);
  sim::DiskDevice disk(sim, sim::DiskModel{});
  GuestConfig gcfg;
  gcfg.vm = 1;
  gcfg.ram_pages = 96;
  gcfg.kernel_reserved_pages = 16;  // 80 usable
  gcfg.swap_slots = 1024;
  gcfg.low_watermark = 6;
  gcfg.high_watermark = 12;
  gcfg.frontswap_enabled = params.frontswap;
  gcfg.frontswap_exclusive_gets = params.exclusive_gets;
  gcfg.zero_write_period = params.zero_write_period;
  GuestKernel kernel(sim, hyp, disk, gcfg);

  Rng rng(params.seed);
  const auto asid = kernel.create_address_space();
  const PageCount region_pages = 192;  // 2.4x usable RAM
  const Vpn base = kernel.alloc_region(asid, region_pages);

  // Shadow model of expected page contents.
  std::map<Vpn, PageContent> expected;

  SimTime t = 0;
  for (int step = 0; step < 30000; ++step) {
    const Vpn vpn = base + rng.uniform(region_pages);
    const bool write = rng.chance(0.5);
    const auto result = kernel.touch(asid, vpn, write, t);
    ASSERT_GE(result.end, t) << "time must never go backwards";
    t = result.end;

    // Before this write, the restored content must match the model (the
    // kernel also asserts this internally in debug builds; here we verify
    // through the public API in release too).
    if (!write) {
      const auto it = expected.find(vpn);
      const PageContent want = it == expected.end() ? 0 : it->second;
      ASSERT_EQ(kernel.page_content(asid, vpn), want)
          << "step " << step << " vpn " << (vpn - base);
    } else {
      expected[vpn] = kernel.page_content(asid, vpn);
    }

    if (step % 2000 == 0) {
      // Frame accounting: free + resident == usable (only one space, no
      // page cache in this sweep).
      ASSERT_EQ(kernel.free_frames() + kernel.resident_pages(asid),
                kernel.usable_frames());
      // Tmem accounting: the hypervisor never holds more pages for the VM
      // than the node's capacity, and swap slots in use are bounded.
      ASSERT_LE(hyp.tmem_used(1), params.tmem_pages);
      ASSERT_LE(kernel.swap().used_slots(), 1024u);
    }
  }

  // Full teardown returns every resource.
  kernel.destroy_address_space(asid, t);
  EXPECT_EQ(kernel.free_frames(), kernel.usable_frames());
  EXPECT_EQ(kernel.swap().used_slots(), 0u);
  EXPECT_EQ(hyp.tmem_used(1), 0u);
  EXPECT_EQ(hyp.free_tmem(), params.tmem_pages);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, GuestKernelSweep,
    ::testing::Values(
        KernelParams{256, true, true, 0, 1},    // ample tmem, exclusive
        KernelParams{256, true, false, 0, 2},   // ample tmem, swap-cache mode
        KernelParams{32, true, true, 0, 3},     // scarce tmem: failed puts
        KernelParams{32, true, false, 0, 4},
        KernelParams{0, true, true, 0, 5},      // no capacity: all disk
        KernelParams{256, false, true, 0, 6},   // frontswap disabled
        KernelParams{64, true, true, 5, 7},     // with zero pages
        KernelParams{1, true, true, 0, 8}));    // single tmem page

// With zero-page dedup enabled, zero-heavy workloads must fit far more
// logical pages than the store's physical capacity.
TEST(GuestKernelZeroPages, DedupStretchesCapacity) {
  sim::Simulator sim;
  hyper::HypervisorConfig hcfg;
  hcfg.total_tmem_pages = 8;
  hcfg.zero_page_dedup = true;
  hyper::Hypervisor hyp(sim, hcfg);
  hyp.register_vm(1);
  sim::DiskDevice disk(sim, sim::DiskModel{});
  GuestConfig gcfg;
  gcfg.vm = 1;
  gcfg.ram_pages = 64;
  gcfg.kernel_reserved_pages = 8;
  gcfg.swap_slots = 512;
  gcfg.low_watermark = 4;
  gcfg.high_watermark = 8;
  gcfg.zero_write_period = 1;  // every write is a zero page
  GuestKernel kernel(sim, hyp, disk, gcfg);
  const auto asid = kernel.create_address_space();
  const Vpn base = kernel.alloc_region(asid, 128);
  SimTime t = 0;
  for (Vpn v = base; v < base + 128; ++v) {
    t = kernel.touch(asid, v, true, t).end;
  }
  // Far more than 8 pages held, none of them consuming frames.
  EXPECT_GT(hyp.tmem_used(1), 8u);
  EXPECT_EQ(kernel.stats().swapouts_disk, 0u);
  // And they read back as zero pages.
  const auto r = kernel.touch(asid, base, false, t);
  EXPECT_EQ(r.outcome, TouchOutcome::kTmemSwapIn);
  EXPECT_EQ(kernel.page_content(asid, base), 0u);
}

}  // namespace
}  // namespace smartmem::guest
