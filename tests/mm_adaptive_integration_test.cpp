// End-to-end adaptive control plane at the staleness cliff.
//
// Geometry: uplink latency fixed at 2.5x the sampling interval with
// drop-oldest bounded queues — ablation_comms' livelock point (~2.5
// samples in flight). At capacity 2 that is total starvation: every
// message is evicted by two newer sends before its 2.5-interval delivery,
// so the MM never hears anything at all. At capacity 3 messages survive
// but every delivery is ~2.5 intervals old forever — the paper's fixed
// loop perpetually acts on stale data. The tests pin both baselines, then
// check the two adaptive mechanisms actually defuse the staleness
// end-to-end: stale-skip decisions audited as alg4:stale-skip in the
// decision log, and the IntervalController stretching the hypervisor's
// cadence over the sequenced downlink until samples arrive fresh again.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace smartmem::core {
namespace {

constexpr double kTinyScale = 0.0625;

/// Scenario 2 node config at the drop-oldest livelock point: the uplink
/// takes 2.5 sampling intervals per hop and holds at most `capacity`
/// in-flight messages.
NodeConfig livelock_config(std::size_t capacity = 3) {
  NodeConfig cfg = scaled_node_defaults(kTinyScale);
  cfg.comm.uplink.latency =
      comm::LatencySpec::fixed_at(cfg.sample_interval * 5 / 2);
  cfg.comm.uplink.queue_capacity = capacity;
  cfg.comm.uplink.queue_policy = comm::QueuePolicy::kDropOldest;
  cfg.comm.downlink.queue_capacity = capacity;
  cfg.comm.downlink.queue_policy = comm::QueuePolicy::kDropOldest;
  return cfg;
}

mm::PolicySpec smart_with(mm::StaleMode mode) {
  mm::PolicySpec policy = mm::PolicySpec::smart(6.0);
  policy.smart_config.stale_mode = mode;
  return policy;
}

// Pin the failure mode first. Capacity 2 starves the MM outright (every
// message is evicted before delivery); capacity 3 delivers, but every
// sample stays ~2.5 intervals old to the very end of the run.
TEST(AdaptiveIntegrationTest, LivelockReproducesWithFixedLoop) {
  const ScenarioSpec spec = scenario2(kTinyScale);

  NodeConfig starved = livelock_config(2);
  auto s = build_node(spec, smart_with(mm::StaleMode::kOff), 7, &starved);
  s->run(spec.deadline);
  EXPECT_EQ(s->manager()->samples_seen(), 0u);

  NodeConfig cfg = livelock_config();
  auto node = build_node(spec, smart_with(mm::StaleMode::kOff), 7, &cfg);
  node->run(spec.deadline);
  EXPECT_GT(node->manager()->samples_seen(), 0u);
  EXPECT_GT(node->manager()->last_stats_age_intervals(), 1.5);
  EXPECT_EQ(node->manager()->policy().stale_decisions(), 0u);
}

// stale-skip engages on exactly those decisions and says so in the audit
// log: the JSONL decision records carry the alg4:stale-skip condition.
TEST(AdaptiveIntegrationTest, StaleSkipFiresAndIsAudited) {
  const ScenarioSpec spec = scenario2(kTinyScale);
  NodeConfig cfg = livelock_config();
  const std::string audit_path =
      ::testing::TempDir() + "/adaptive_stale_audit.jsonl";
  cfg.obs.audit_out = audit_path;

  auto node = build_node(spec, smart_with(mm::StaleMode::kSkip), 7, &cfg);
  node->run(spec.deadline);

  EXPECT_GT(node->manager()->policy().stale_decisions(), 0u);

  std::ifstream in(audit_path);
  ASSERT_TRUE(in.good()) << audit_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string log = buf.str();
  EXPECT_NE(log.find("alg4:stale-skip"), std::string::npos)
      << "no stale-skip condition in the decision audit log";
  EXPECT_NE(log.find("\"policy\":\"smart-alloc(P=6.00%,stale=skip@1.5)\""),
            std::string::npos)
      << "policy name does not carry the stale mode";
}

// The tentpole, end to end: the IntervalController notices the congested
// uplink, stretches the cadence, the update rides the sequenced downlink,
// the hypervisor reschedules its sampler at runtime — and the livelock no
// longer reproduces: samples arrive fresh (under the stale threshold)
// because the interval now exceeds the hop latency.
TEST(AdaptiveIntegrationTest, AdaptiveIntervalDefusesTheLivelock) {
  const ScenarioSpec spec = scenario2(kTinyScale);
  NodeConfig cfg = livelock_config();
  cfg.adaptive_interval.enabled = true;
  // Scenario 2 keeps its VMs at the put ceiling throughout, so the
  // hot-shrink reflex would tug against the congestion stretch forever;
  // disable it here to exercise the congestion loop in isolation.
  cfg.adaptive_interval.hot_failed_puts =
      std::numeric_limits<std::uint64_t>::max();

  auto node = build_node(spec, smart_with(mm::StaleMode::kSkip), 7, &cfg);
  node->run(spec.deadline);

  const auto* ctl = node->manager()->interval_controller();
  ASSERT_NE(ctl, nullptr);
  EXPECT_GT(ctl->stretches(), 0u);
  // The retune reached the hypervisor over the downlink and rescheduled the
  // running sampler.
  EXPECT_GT(node->hypervisor().interval_updates(), 0u);
  EXPECT_GT(node->hypervisor().sample_interval(), cfg.sample_interval);
  EXPECT_EQ(node->hypervisor().sample_interval(),
            node->manager()->current_interval());
  // Livelock gone: the last delivered sample is fresh again.
  EXPECT_LT(node->manager()->last_stats_age_intervals(), 1.5);
}

// The adaptive path stays a pure function of the seed: two identical runs
// produce identical finish times and identical controller traces.
TEST(AdaptiveIntegrationTest, AdaptiveRunIsDeterministic) {
  const ScenarioSpec spec = scenario2(kTinyScale);
  NodeConfig cfg = livelock_config();
  cfg.adaptive_interval.enabled = true;

  auto a = build_node(spec, smart_with(mm::StaleMode::kWiden), 11, &cfg);
  a->run(spec.deadline);
  auto b = build_node(spec, smart_with(mm::StaleMode::kWiden), 11, &cfg);
  b->run(spec.deadline);

  for (VmId id : a->vm_ids()) {
    EXPECT_EQ(a->runner(id).finish_time(), b->runner(id).finish_time());
  }
  EXPECT_EQ(a->manager()->interval_controller()->changes(),
            b->manager()->interval_controller()->changes());
  EXPECT_EQ(a->manager()->current_interval(), b->manager()->current_interval());
  EXPECT_EQ(a->hypervisor().interval_updates(),
            b->hypervisor().interval_updates());
  EXPECT_EQ(a->manager()->policy().stale_decisions(),
            b->manager()->policy().stale_decisions());
}

}  // namespace
}  // namespace smartmem::core
