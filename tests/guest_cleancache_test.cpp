// The cleancache path: page-cache reads, eviction into the ephemeral pool,
// and victim-cache hits on re-read.
#include <gtest/gtest.h>

#include <memory>

#include "guest/guest_kernel.hpp"
#include "hyper/hypervisor.hpp"

namespace smartmem::guest {
namespace {

struct Rig {
  sim::Simulator sim;
  std::unique_ptr<hyper::Hypervisor> hyp;
  std::unique_ptr<sim::DiskDevice> disk;
  std::unique_ptr<GuestKernel> kernel;

  explicit Rig(PageCount tmem_pages, bool cleancache = true) {
    hyper::HypervisorConfig hcfg;
    hcfg.total_tmem_pages = tmem_pages;
    hyp = std::make_unique<hyper::Hypervisor>(sim, hcfg);
    hyp->register_vm(1);
    disk = std::make_unique<sim::DiskDevice>(sim, sim::DiskModel{});
    GuestConfig cfg;
    cfg.vm = 1;
    cfg.ram_pages = 64;
    cfg.kernel_reserved_pages = 8;
    cfg.swap_slots = 256;
    cfg.low_watermark = 4;
    cfg.high_watermark = 8;
    cfg.cleancache_enabled = cleancache;
    kernel = std::make_unique<GuestKernel>(sim, *hyp, *disk, cfg);
  }
};

TEST(CleancacheTest, FileReadValidation) {
  Rig rig(64);
  EXPECT_THROW(rig.kernel->file_read(1, 0, 0), std::out_of_range);
  rig.kernel->register_file(1, 10);
  EXPECT_THROW(rig.kernel->file_read(1, 10, 0), std::out_of_range);
}

TEST(CleancacheTest, FirstReadComesFromDisk) {
  Rig rig(64);
  rig.kernel->register_file(1, 10);
  const auto r = rig.kernel->file_read(1, 0, 0);
  EXPECT_EQ(r.outcome, FileReadOutcome::kDiskRead);
  EXPECT_EQ(rig.kernel->stats().file_disk_reads, 1u);
}

TEST(CleancacheTest, SecondReadHitsPageCache) {
  Rig rig(64);
  rig.kernel->register_file(1, 10);
  const SimTime t = rig.kernel->file_read(1, 0, 0).end;
  const auto r = rig.kernel->file_read(1, 0, t);
  EXPECT_EQ(r.outcome, FileReadOutcome::kPageCacheHit);
  EXPECT_EQ(r.end - t, rig.kernel->config().costs.page_cache_hit);
}

TEST(CleancacheTest, EvictedCleanPagesLandInCleancacheAndHitOnReRead) {
  Rig rig(256);
  // 100 file pages through 56 usable frames: early pages get evicted into
  // the ephemeral pool.
  rig.kernel->register_file(1, 100);
  SimTime t = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    t = rig.kernel->file_read(1, i, t).end;
  }
  EXPECT_GT(rig.kernel->stats().cleancache_puts, 0u);
  EXPECT_GT(rig.hyp->tmem_used(1), 0u);

  // Re-read the early pages: victim-cache hits instead of disk reads.
  const std::uint64_t disk_before = rig.kernel->stats().file_disk_reads;
  bool saw_hit = false;
  for (std::uint32_t i = 0; i < 20; ++i) {
    const auto r = rig.kernel->file_read(1, i, t);
    t = r.end;
    if (r.outcome == FileReadOutcome::kCleancacheHit) saw_hit = true;
  }
  EXPECT_TRUE(saw_hit);
  EXPECT_GT(rig.kernel->stats().cleancache_hits, 0u);
  EXPECT_EQ(rig.kernel->stats().file_disk_reads, disk_before);
}

TEST(CleancacheTest, CleancacheHitIsDestructive) {
  Rig rig(256);
  rig.kernel->register_file(1, 100);
  SimTime t = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    t = rig.kernel->file_read(1, i, t).end;
  }
  const PageCount held = rig.hyp->tmem_used(1);
  ASSERT_GT(held, 0u);
  // One victim-cache hit moves the page back into the page cache.
  for (std::uint32_t i = 0; i < 100; ++i) {
    const auto r = rig.kernel->file_read(1, i, t);
    t = r.end;
    if (r.outcome == FileReadOutcome::kCleancacheHit) break;
  }
  EXPECT_LT(rig.hyp->tmem_used(1), held);
}

TEST(CleancacheTest, DisabledCleancacheAlwaysReadsDisk) {
  Rig rig(256, /*cleancache=*/false);
  rig.kernel->register_file(1, 100);
  SimTime t = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    t = rig.kernel->file_read(1, i, t).end;
  }
  for (std::uint32_t i = 0; i < 20; ++i) {
    const auto r = rig.kernel->file_read(1, i, t);
    t = r.end;
    EXPECT_NE(r.outcome, FileReadOutcome::kCleancacheHit);
  }
  EXPECT_EQ(rig.hyp->tmem_used(1), 0u);
  EXPECT_EQ(rig.kernel->stats().cleancache_puts, 0u);
}

TEST(CleancacheTest, HypervisorMayDropEphemeralPagesUnderPressure) {
  // Tiny tmem: another VM's persistent puts displace our cleancache pages.
  Rig rig(16);
  rig.hyp->register_vm(2);
  rig.kernel->register_file(1, 100);
  SimTime t = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    t = rig.kernel->file_read(1, i, t).end;
  }
  for (std::uint32_t i = 0; i < 16; ++i) {
    ASSERT_EQ(rig.hyp->frontswap_put(2, 0, i, i), hyper::OpStatus::kSuccess);
  }
  EXPECT_EQ(rig.hyp->tmem_used(1), 0u);  // every ephemeral page sacrificed
  // Guest re-reads simply miss and fall back to disk: no data loss.
  const auto r = rig.kernel->file_read(1, 0, t);
  EXPECT_EQ(r.outcome, FileReadOutcome::kDiskRead);
}

}  // namespace
}  // namespace smartmem::guest
