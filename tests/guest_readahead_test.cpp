// Swap read-ahead: clustered disk swap-ins for adjacent slots.
#include <gtest/gtest.h>

#include <memory>

#include "guest/guest_kernel.hpp"
#include "hyper/hypervisor.hpp"

namespace smartmem::guest {
namespace {

struct Rig {
  sim::Simulator sim;
  std::unique_ptr<hyper::Hypervisor> hyp;
  std::unique_ptr<sim::DiskDevice> disk;
  std::unique_ptr<GuestKernel> kernel;

  explicit Rig(std::uint32_t readahead) {
    hyper::HypervisorConfig hcfg;
    hcfg.total_tmem_pages = 0;  // force every swap-out to disk
    hyp = std::make_unique<hyper::Hypervisor>(sim, hcfg);
    hyp->register_vm(1);
    disk = std::make_unique<sim::DiskDevice>(sim, sim::DiskModel{});
    GuestConfig cfg;
    cfg.vm = 1;
    cfg.ram_pages = 64;
    cfg.kernel_reserved_pages = 8;  // 56 usable
    cfg.swap_slots = 1024;
    cfg.low_watermark = 4;
    cfg.high_watermark = 16;
    cfg.swap_readahead = readahead;
    kernel = std::make_unique<GuestKernel>(sim, *hyp, *disk, cfg);
  }
};

// Sequentially evicted pages land in adjacent slots; a fault on the first
// must pull neighbours in with it.
TEST(ReadaheadTest, SequentialFaultsAreClustered) {
  Rig rig(8);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 160);
  SimTime t = 0;
  for (Vpn v = base; v < base + 160; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
  }
  // Re-read the whole region: with clustering, demand reads should be far
  // fewer than total disk swap-ins.
  for (Vpn v = base; v < base + 160; ++v) {
    t = rig.kernel->touch(asid, v, false, t).end;
  }
  const GuestStats& s = rig.kernel->stats();
  EXPECT_GT(s.swapins_readahead, 0u);
  EXPECT_GT(s.swapins_readahead, s.swapins_disk)
      << "most pages should arrive via read-ahead in a sequential scan";
}

TEST(ReadaheadTest, DisabledMeansOneFaultPerPage) {
  Rig rig(1);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 160);
  SimTime t = 0;
  for (Vpn v = base; v < base + 160; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
  }
  for (Vpn v = base; v < base + 160; ++v) {
    t = rig.kernel->touch(asid, v, false, t).end;
  }
  EXPECT_EQ(rig.kernel->stats().swapins_readahead, 0u);
}

TEST(ReadaheadTest, ClusteringReducesRuntime) {
  auto run = [](std::uint32_t readahead) {
    Rig rig(readahead);
    const auto asid = rig.kernel->create_address_space();
    const Vpn base = rig.kernel->alloc_region(asid, 160);
    SimTime t = 0;
    for (int pass = 0; pass < 3; ++pass) {
      for (Vpn v = base; v < base + 160; ++v) {
        t = rig.kernel->touch(asid, v, pass == 0, t).end;
      }
    }
    return t;
  };
  const SimTime with = run(8);
  const SimTime without = run(1);
  EXPECT_LT(with, without / 2)
      << "8-page clusters should cut sequential thrash time by far more "
         "than half";
}

TEST(ReadaheadTest, ContentSurvivesReadahead) {
  Rig rig(8);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 160);
  SimTime t = 0;
  std::vector<PageContent> tokens(160);
  for (Vpn v = base; v < base + 160; ++v) {
    t = rig.kernel->touch(asid, v, true, t).end;
    tokens[v - base] = rig.kernel->page_content(asid, v);
  }
  for (Vpn v = base; v < base + 160; ++v) {
    t = rig.kernel->touch(asid, v, false, t).end;
    ASSERT_EQ(rig.kernel->page_content(asid, v), tokens[v - base])
        << "page " << (v - base);
  }
}

TEST(ReadaheadTest, NeverStealsFramesBelowWatermark) {
  Rig rig(8);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 160);
  SimTime t = 0;
  for (int pass = 0; pass < 4; ++pass) {
    for (Vpn v = base; v < base + 160; ++v) {
      t = rig.kernel->touch(asid, v, pass == 0, t).end;
      // The low watermark is a hard floor for speculation; demand paging
      // itself may dip below it only transiently within obtain_frame.
      ASSERT_GE(rig.kernel->free_frames() + 1, 4u);
    }
  }
}

TEST(ReadaheadTest, TeardownStaysClean) {
  Rig rig(8);
  const auto asid = rig.kernel->create_address_space();
  const Vpn base = rig.kernel->alloc_region(asid, 160);
  SimTime t = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (Vpn v = base; v < base + 160; ++v) {
      t = rig.kernel->touch(asid, v, pass == 0, t).end;
    }
  }
  t = rig.kernel->destroy_address_space(asid, t);
  EXPECT_EQ(rig.kernel->swap().used_slots(), 0u);
  EXPECT_EQ(rig.kernel->free_frames(), rig.kernel->usable_frames());
}

}  // namespace
}  // namespace smartmem::guest
