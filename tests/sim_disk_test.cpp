#include "sim/disk.hpp"

#include <gtest/gtest.h>

namespace smartmem::sim {
namespace {

DiskModel test_model() {
  DiskModel m;
  m.access_latency = 100 * kMicrosecond;
  m.bandwidth_bytes_per_sec = 100ull * 1024 * 1024;  // ~39us per 4 KiB
  return m;
}

TEST(DiskTest, ServiceTimeIsLatencyPlusTransfer) {
  Simulator sim;
  DiskDevice disk(sim, test_model());
  const SimTime transfer = disk.service_time(0) - 0;
  EXPECT_EQ(transfer, test_model().access_latency);
  const SimTime four_k = disk.service_time(4096);
  EXPECT_GT(four_k, test_model().access_latency);
  // 4096 bytes at 100 MiB/s = 39.06 us.
  EXPECT_NEAR(static_cast<double>(four_k - test_model().access_latency),
              39.06 * kMicrosecond, 1.0 * kMicrosecond);
}

TEST(DiskTest, SingleReadCompletesAfterServiceTime) {
  Simulator sim;
  DiskDevice disk(sim, test_model());
  const SimTime done = disk.read(4096, 0);
  EXPECT_EQ(done, disk.service_time(4096));
}

TEST(DiskTest, ReadsQueueBehindEachOther) {
  Simulator sim;
  DiskDevice disk(sim, test_model());
  const SimTime first = disk.read(4096, 0);
  const SimTime second = disk.read(4096, 0);
  EXPECT_EQ(second, first + disk.service_time(4096));
  EXPECT_EQ(disk.read_busy_until(), second);
}

TEST(DiskTest, WritesDoNotBlockReads) {
  Simulator sim;
  DiskDevice disk(sim, test_model());
  for (int i = 0; i < 100; ++i) disk.write(4096, 0);
  const SimTime read_done = disk.read(4096, 0);
  EXPECT_EQ(read_done, disk.service_time(4096));
  EXPECT_GT(disk.write_busy_until(), disk.read_busy_until());
}

TEST(DiskTest, SubmitTimeInTheFutureIsRespected) {
  Simulator sim;
  DiskDevice disk(sim, test_model());
  const SimTime done = disk.read(4096, 1 * kSecond);
  EXPECT_EQ(done, 1 * kSecond + disk.service_time(4096));
}

TEST(DiskTest, IdleGapResetsQueue) {
  Simulator sim;
  DiskDevice disk(sim, test_model());
  const SimTime first = disk.read(4096, 0);
  // Submitted long after the first completes: no queueing delay.
  const SimTime second = disk.read(4096, first + kSecond);
  EXPECT_EQ(second, first + kSecond + disk.service_time(4096));
}

TEST(DiskTest, CompletionCallbackFiresAtCompletionTime) {
  Simulator sim;
  DiskDevice disk(sim, test_model());
  SimTime fired_at = -1;
  const SimTime done = disk.read(4096, 0, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, done);
}

TEST(DiskTest, StatsAccounting) {
  Simulator sim;
  DiskDevice disk(sim, test_model());
  disk.read(4096, 0);
  disk.read(8192, 0);
  disk.write(4096, 0);
  const DiskStats& s = disk.stats();
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.bytes_read, 12288u);
  EXPECT_EQ(s.bytes_written, 4096u);
  EXPECT_GT(s.read_busy_time, 0);
  // Second read queued behind the first.
  EXPECT_GT(s.read_queue_delay_ns.max(), 0.0);
}

}  // namespace
}  // namespace smartmem::sim
