// Engine self-profiler: per-window accounting invariants (busy + barrier
// wait = window critical path, exactly one critical shard per window),
// injection attribution on both ends of a cross-shard hop, idle-skip
// accounting, bottleneck naming under a deliberately lopsided load, and —
// the profiler's core contract — that attaching one changes nothing about
// the simulation itself.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <tuple>

#include "sim/parallel.hpp"
#include "sim/profiler.hpp"
#include "sim/simulator.hpp"

namespace smartmem::sim {
namespace {

constexpr SimTime kLookahead = 100;

/// Ping-pong scenario shared by several tests: shard a posts to shard b and
/// back, `spin` burns deterministic-ish wall time per event on shard a so
/// the load is lopsided when asked to be.
struct PingPong {
  Simulator s0, s1;
  ParallelEngine eng;
  std::size_t a, b;
  std::uint64_t a_events = 0, b_events = 0;
  std::function<void(std::size_t, std::size_t, Simulator*)> bounce;

  explicit PingPong(std::size_t threads, std::size_t spin = 0)
      : eng({kLookahead, threads}), a(eng.add_shard(&s0)),
        b(eng.add_shard(&s1)) {
    bounce = [this, spin](std::size_t src, std::size_t dst, Simulator* sim) {
      eng.post(src, dst, sim->now() + kLookahead, [this, src, dst, spin] {
        if (dst == a) {
          ++a_events;
          volatile std::uint64_t sink = 0;
          for (std::size_t i = 0; i < spin; ++i) sink = sink + i;
          bounce(dst, src, &s0);
        } else {
          ++b_events;
          bounce(dst, src, &s1);
        }
      });
    };
    s0.schedule_at(1, [this] { bounce(a, b, &s0); });
  }
};

TEST(EngineProfilerTest, WindowAccountingInvariants) {
  PingPong pp(2);
  EngineProfiler prof;
  pp.eng.set_profiler(&prof);
  pp.eng.run([] { return false; }, 20'000);

  const EngineProfiler::Report rep = prof.report();
  EXPECT_EQ(rep.windows, pp.eng.windows_run());
  ASSERT_GT(rep.windows, 10u);
  ASSERT_EQ(rep.shards.size(), 2u);

  std::uint64_t critical_total = 0;
  for (const EngineProfiler::ShardProfile* s : rep.shards) {
    // Per window, barrier wait is defined as critical path minus own busy;
    // summed over the run the two must rebuild the total window wall time.
    EXPECT_EQ(s->busy_ns + s->barrier_wait_ns, rep.window_wall_ns)
        << s->label;
    critical_total += s->critical_windows;
  }
  // Exactly one shard is critical per window, no window unattributed.
  EXPECT_EQ(critical_total, rep.windows);

  // Both shards executed their bounce events and the profiler saw them
  // (the +1 is the t=1 kick-off event that starts the ping-pong).
  EXPECT_EQ(rep.shards[0]->events + rep.shards[1]->events,
            pp.a_events + pp.b_events + 1);
  EXPECT_GT(pp.a_events, 0u);
}

TEST(EngineProfilerTest, InjectionsAttributedToBothEnds) {
  PingPong pp(1);
  EngineProfiler prof;
  pp.eng.set_profiler(&prof);
  pp.eng.run([] { return false; }, 10'000);

  // A ping-pong alternates strictly: every message one shard stages is
  // delivered into the other, so out/in totals mirror across the pair.
  const auto& sa = prof.shard(pp.a);
  const auto& sb = prof.shard(pp.b);
  EXPECT_GT(sa.injections_out, 0u);
  EXPECT_EQ(sa.injections_out, sb.injections_in);
  EXPECT_EQ(sb.injections_out, sa.injections_in);
  // Every executed bounce arrived as one drained injection; at most a
  // couple staged near the deadline were drained but never executed.
  const std::uint64_t hops = sa.injections_out + sb.injections_out;
  EXPECT_GE(hops, pp.a_events + pp.b_events);
  EXPECT_LE(hops, pp.a_events + pp.b_events + 2);
}

TEST(EngineProfilerTest, IdleSkipCoversDeadTime) {
  Simulator s0, s1;
  ParallelEngine eng({kLookahead, 1});
  eng.add_shard(&s0);
  eng.add_shard(&s1);
  EngineProfiler prof;
  eng.set_profiler(&prof);
  int fired = 0;
  s0.schedule_at(5'000, [&] { ++fired; });
  s1.schedule_at(5'010, [&] { ++fired; });
  eng.run([] { return false; }, 100'000);
  EXPECT_EQ(fired, 2);
  // Nothing is pending before t=5000; the engine jumps there and the
  // profiler books the jump as idle skip instead of empty windows.
  EXPECT_GE(prof.idle_skip(), 4'000);
  EXPECT_EQ(prof.windows(), eng.windows_run());
}

TEST(EngineProfilerTest, BottleneckNamesTheLoadedShard) {
  // Shard a grinds a short-period spinning periodic in *every* window while
  // shard b only relays the ping-pong: a must win the critical-path
  // attribution by a landslide, whatever the host clock resolution is.
  PingPong pp(2);
  pp.s0.schedule_periodic(7, [] {
    volatile std::uint64_t sink = 0;
    for (std::size_t i = 0; i < 20'000; ++i) sink = sink + i;
  });
  EngineProfiler prof;
  prof.set_shard_label(pp.a, "hot");
  prof.set_shard_label(pp.b, "cold");
  pp.eng.set_profiler(&prof);
  pp.eng.run([] { return false; }, 50'000);

  const EngineProfiler::Report rep = prof.report();
  ASSERT_NE(rep.bottleneck_shard(), nullptr);
  EXPECT_EQ(rep.bottleneck_shard()->label, "hot");
  EXPECT_GT(prof.shard(pp.a).busy_ns, prof.shard(pp.b).busy_ns);
  EXPECT_GT(prof.shard(pp.a).critical_windows,
            prof.shard(pp.b).critical_windows);
  // Occupancy histograms observed every contested window on both shards.
  EXPECT_EQ(prof.shard(pp.a).occupancy.total(),
            prof.shard(pp.b).occupancy.total());
}

TEST(EngineProfilerTest, ProfiledRunMatchesUnprofiledRun) {
  // The profiler reads clocks and counters only — same seedless scenario,
  // with and without one attached, must execute the identical event set.
  auto run = [](EngineProfiler* prof) {
    PingPong pp(4);
    pp.eng.set_profiler(prof);
    const SimTime end = pp.eng.run([] { return false; }, 30'000);
    return std::tuple<std::uint64_t, std::uint64_t, SimTime, std::uint64_t>(
        pp.a_events, pp.b_events, end, pp.eng.windows_run());
  };
  EngineProfiler prof;
  EXPECT_EQ(run(&prof), run(nullptr));
  EXPECT_GT(prof.windows(), 0u);
}

TEST(EngineProfilerTest, DefaultLabelsAndEmptyReport) {
  EngineProfiler prof;
  EXPECT_EQ(prof.report().bottleneck_shard(), nullptr);
  prof.resize(3);
  EXPECT_EQ(prof.shard(2).label, "s2");
  prof.set_shard_label(2, "rack");
  prof.resize(2);  // only ever grows
  EXPECT_EQ(prof.shard_count(), 3u);
  EXPECT_EQ(prof.shard(2).label, "rack");
}

}  // namespace
}  // namespace smartmem::sim
