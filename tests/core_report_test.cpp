// Report rendering: runtime tables, improvement lines and CSV output.
#include "core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace smartmem::core {
namespace {

ExperimentResult fake_result(const std::string& policy, double vm1_run1,
                             double vm2_run1) {
  ExperimentResult r;
  r.scenario = "test";
  r.policy_label = policy;
  r.vm_names = {"VM1", "VM2"};
  r.labels = {"run:1"};
  Summary s1;
  s1.mean = vm1_run1;
  s1.stddev = 0.5;
  s1.n = 5;
  Summary s2;
  s2.mean = vm2_run1;
  s2.stddev = 0.25;
  s2.n = 5;
  r.cells[{"VM1", "run:1"}] = s1;
  r.cells[{"VM2", "run:1"}] = s2;
  return r;
}

TEST(ReportTest, RuntimeTableContainsPoliciesAndRows) {
  std::ostringstream out;
  print_runtime_table(out, "My Figure",
                      {fake_result("no-tmem", 20.0, 22.0),
                       fake_result("greedy", 10.0, 11.0)});
  const std::string text = out.str();
  EXPECT_NE(text.find("My Figure"), std::string::npos);
  EXPECT_NE(text.find("no-tmem"), std::string::npos);
  EXPECT_NE(text.find("greedy"), std::string::npos);
  EXPECT_NE(text.find("VM1 run:1"), std::string::npos);
  EXPECT_NE(text.find("VM2 run:1"), std::string::npos);
  EXPECT_NE(text.find("20.00"), std::string::npos);
  EXPECT_NE(text.find("11.00"), std::string::npos);
}

TEST(ReportTest, MissingCellsRenderDash) {
  auto incomplete = fake_result("greedy", 10.0, 11.0);
  incomplete.cells.erase({"VM2", "run:1"});
  std::ostringstream out;
  print_runtime_table(out, "t", {fake_result("no-tmem", 20.0, 22.0),
                                 incomplete});
  EXPECT_NE(out.str().find('-'), std::string::npos);
}

TEST(ReportTest, ImprovementsComputeRelativeSpeedup) {
  std::ostringstream out;
  print_improvements(out,
                     {fake_result("no-tmem", 20.0, 22.0),
                      fake_result("greedy", 10.0, 11.0)},
                     "no-tmem");
  const std::string text = out.str();
  // (20-10)/20 = +50% for both cells.
  EXPECT_NE(text.find("greedy"), std::string::npos);
  EXPECT_NE(text.find("+50.0%"), std::string::npos);
}

TEST(ReportTest, ImprovementsSilentWithoutBaseline) {
  std::ostringstream out;
  print_improvements(out, {fake_result("greedy", 10.0, 11.0)}, "no-tmem");
  EXPECT_TRUE(out.str().empty());
}

TEST(ReportTest, RuntimeCsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/smartmem_report_test.csv";
  write_runtime_csv(path, {fake_result("greedy", 10.0, 11.0)});
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("scenario,policy,vm,label,mean_s,stddev_s,n"),
            std::string::npos);
  EXPECT_NE(all.find("test,greedy,VM1,run:1,10,0.5,5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportTest, UsagePanelRendersChart) {
  ScenarioResult run;
  run.policy = "greedy";
  run.seed = 3;
  for (SimTime t = 0; t <= 10 * kSecond; t += kSecond) {
    run.usage.series("VM1").push(t, static_cast<double>(t / kSecond) * 100);
    run.usage.series("target-VM1").push(t, 500.0);
    run.usage.series("free").push(t, 1000.0);
  }
  std::ostringstream out;
  print_usage_panel(out, "panel", run, /*include_targets=*/false);
  EXPECT_NE(out.str().find("VM1"), std::string::npos);
  EXPECT_EQ(out.str().find("target-VM1"), std::string::npos);
  EXPECT_EQ(out.str().find("free"), std::string::npos);

  std::ostringstream out2;
  print_usage_panel(out2, "panel", run, /*include_targets=*/true);
  EXPECT_NE(out2.str().find("target-VM1"), std::string::npos);
}

}  // namespace
}  // namespace smartmem::core
