// Unit tests for Algorithm 1 and the hypervisor's Table I bookkeeping.
#include "hyper/hypervisor.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace smartmem::hyper {
namespace {

HypervisorConfig config(PageCount pages,
                        DefaultTargetMode mode = DefaultTargetMode::kUnlimited) {
  HypervisorConfig cfg;
  cfg.total_tmem_pages = pages;
  cfg.default_target_mode = mode;
  return cfg;
}

TEST(HypervisorTest, RegisterAndUnregister) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(100));
  hyp.register_vm(1);
  hyp.register_vm(2);
  EXPECT_TRUE(hyp.vm_registered(1));
  EXPECT_EQ(hyp.vm_count(), 2u);
  EXPECT_THROW(hyp.register_vm(1), std::invalid_argument);
  hyp.unregister_vm(1);
  EXPECT_FALSE(hyp.vm_registered(1));
  hyp.unregister_vm(1);  // idempotent
}

TEST(HypervisorTest, GreedyDefaultHasUnlimitedTarget) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(100));
  hyp.register_vm(1);
  EXPECT_EQ(hyp.target(1), kUnlimitedTarget);
}

TEST(HypervisorTest, EqualShareModeDividesOnRegistration) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(90, DefaultTargetMode::kEqualShare));
  hyp.register_vm(1);
  EXPECT_EQ(hyp.target(1), 90u);
  hyp.register_vm(2);
  hyp.register_vm(3);
  EXPECT_EQ(hyp.target(1), 30u);
  EXPECT_EQ(hyp.target(3), 30u);
  hyp.unregister_vm(2);
  EXPECT_EQ(hyp.target(1), 45u);
}

// The sequenced hypercall path: a reordered or duplicated downlink delivery
// must not regress targets to an older vector.
TEST(HypervisorTest, ApplyTargetsDropsStaleSequences) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(100));
  hyp.register_vm(1);

  hyp.apply_targets({2, {{1, 40}}});
  EXPECT_EQ(hyp.target(1), 40u);
  EXPECT_EQ(hyp.last_target_seq(), 2u);

  hyp.apply_targets({1, {{1, 10}}});  // reordered: older than seq 2
  EXPECT_EQ(hyp.target(1), 40u);
  hyp.apply_targets({2, {{1, 10}}});  // duplicated delivery of seq 2
  EXPECT_EQ(hyp.target(1), 40u);
  EXPECT_EQ(hyp.stale_targets_dropped(), 2u);
  EXPECT_EQ(hyp.target_updates(), 1u);

  hyp.apply_targets({3, {{1, 60}}});  // fresh: applies
  EXPECT_EQ(hyp.target(1), 60u);
  EXPECT_EQ(hyp.last_target_seq(), 3u);
}

// seq 0 marks the raw unsequenced hypercall (tests/tooling): always applied.
TEST(HypervisorTest, UnsequencedTargetsAlwaysApply) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(100));
  hyp.register_vm(1);
  hyp.apply_targets({5, {{1, 40}}});
  hyp.apply_targets({0, {{1, 25}}});
  EXPECT_EQ(hyp.target(1), 25u);
  EXPECT_EQ(hyp.last_target_seq(), 5u);
  EXPECT_EQ(hyp.stale_targets_dropped(), 0u);
}

TEST(HypervisorTest, SampleTicksStampMonotonicSequences) {
  sim::Simulator sim;
  HypervisorConfig cfg = config(100);
  cfg.sample_interval = kSecond;
  Hypervisor hyp(sim, cfg);
  hyp.register_vm(1);

  std::vector<std::uint64_t> seqs;
  hyp.start_sampling([&](const MemStats& s) { seqs.push_back(s.seq); });
  sim.run_until(3 * kSecond);
  hyp.stop_sampling();
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3}));
  // Monitoring snapshots stay unsequenced.
  EXPECT_EQ(hyp.snapshot().seq, 0u);
}

TEST(HypervisorTest, PutGetFlushRoundTrip) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(10));
  hyp.register_vm(1);
  EXPECT_EQ(hyp.frontswap_put(1, 0, 5, 0x1234), OpStatus::kSuccess);
  EXPECT_EQ(hyp.tmem_used(1), 1u);
  EXPECT_EQ(hyp.frontswap_get(1, 0, 5), 0x1234u);
  EXPECT_EQ(hyp.tmem_used(1), 1u);  // persistent get leaves the page
  EXPECT_EQ(hyp.frontswap_flush(1, 0, 5), OpStatus::kSuccess);
  EXPECT_EQ(hyp.tmem_used(1), 0u);
  EXPECT_EQ(hyp.frontswap_flush(1, 0, 5), OpStatus::kNotFound);
}

// Algorithm 1 line 5: a put fails with E_TMEM once tmem_used >= mm_target.
TEST(HypervisorTest, PutFailsAtTarget) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(100));
  hyp.register_vm(1);
  hyp.set_targets({{1, 3}});
  EXPECT_EQ(hyp.frontswap_put(1, 0, 0, 1), OpStatus::kSuccess);
  EXPECT_EQ(hyp.frontswap_put(1, 0, 1, 2), OpStatus::kSuccess);
  EXPECT_EQ(hyp.frontswap_put(1, 0, 2, 3), OpStatus::kSuccess);
  EXPECT_EQ(hyp.frontswap_put(1, 0, 3, 4), OpStatus::kNoCapacity);
  const VmData& data = hyp.vm_data(1);
  EXPECT_EQ(data.puts_total, 4u);
  EXPECT_EQ(data.puts_succ, 3u);
  EXPECT_EQ(data.cumul_puts_failed, 1u);
}

// Algorithm 1 line 7: a put fails when the node has no free tmem, even if
// the VM is below its target.
TEST(HypervisorTest, PutFailsWhenNodeFull) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(2));
  hyp.register_vm(1);
  hyp.register_vm(2);
  EXPECT_EQ(hyp.frontswap_put(1, 0, 0, 1), OpStatus::kSuccess);
  EXPECT_EQ(hyp.frontswap_put(1, 0, 1, 2), OpStatus::kSuccess);
  EXPECT_EQ(hyp.frontswap_put(2, 0, 0, 3), OpStatus::kNoCapacity);
  EXPECT_EQ(hyp.free_tmem(), 0u);
}

// "It is possible for a VM to use more tmem than its target" — lowering the
// target below current use must not drop pages, only block further puts.
TEST(HypervisorTest, OveruseIsToleratedButBlocksFurtherPuts) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(100));
  hyp.register_vm(1);
  for (std::uint32_t i = 0; i < 10; ++i) {
    ASSERT_EQ(hyp.frontswap_put(1, 0, i, i), OpStatus::kSuccess);
  }
  hyp.set_targets({{1, 4}});
  EXPECT_EQ(hyp.tmem_used(1), 10u);
  EXPECT_EQ(hyp.frontswap_put(1, 0, 99, 1), OpStatus::kNoCapacity);
  // Release below target; puts work again.
  for (std::uint32_t i = 0; i < 7; ++i) {
    EXPECT_EQ(hyp.frontswap_flush(1, 0, i), OpStatus::kSuccess);
  }
  EXPECT_EQ(hyp.tmem_used(1), 3u);
  EXPECT_EQ(hyp.frontswap_put(1, 0, 99, 1), OpStatus::kSuccess);
}

TEST(HypervisorTest, TargetsApplyPerVm) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(100));
  hyp.register_vm(1);
  hyp.register_vm(2);
  hyp.set_targets({{1, 5}, {2, 50}});
  EXPECT_EQ(hyp.target(1), 5u);
  EXPECT_EQ(hyp.target(2), 50u);
  EXPECT_EQ(hyp.target_updates(), 1u);
  // Unknown VM targets are ignored without throwing.
  hyp.set_targets({{99, 1}});
  EXPECT_EQ(hyp.target_updates(), 2u);
}

TEST(HypervisorTest, FlushObject) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(100));
  hyp.register_vm(1);
  for (std::uint32_t i = 0; i < 6; ++i) {
    (void)hyp.frontswap_put(1, 7, i, i);
  }
  (void)hyp.frontswap_put(1, 8, 0, 0);
  EXPECT_EQ(hyp.frontswap_flush_object(1, 7), 6u);
  EXPECT_EQ(hyp.tmem_used(1), 1u);
}

TEST(HypervisorTest, CleancachePutGetAreEphemeral) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(10));
  hyp.register_vm(1);
  EXPECT_EQ(hyp.cleancache_put(1, 3, 0, 77), OpStatus::kSuccess);
  EXPECT_EQ(hyp.tmem_used(1), 1u);
  EXPECT_EQ(hyp.cleancache_get(1, 3, 0), 77u);
  // Ephemeral get is destructive.
  EXPECT_EQ(hyp.tmem_used(1), 0u);
  EXPECT_FALSE(hyp.cleancache_get(1, 3, 0).has_value());
}

TEST(HypervisorTest, CleancacheCountsAgainstTheSameTarget) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(100));
  hyp.register_vm(1);
  hyp.set_targets({{1, 2}});
  EXPECT_EQ(hyp.frontswap_put(1, 0, 0, 1), OpStatus::kSuccess);
  EXPECT_EQ(hyp.cleancache_put(1, 0, 0, 2), OpStatus::kSuccess);
  EXPECT_EQ(hyp.cleancache_put(1, 0, 1, 3), OpStatus::kNoCapacity);
}

// A persistent put may displace ephemeral (cleancache) pages: the node only
// counts as full when nothing is evictable.
TEST(HypervisorTest, PersistentPutDisplacesCleancache) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(2));
  hyp.register_vm(1);
  hyp.register_vm(2);
  EXPECT_EQ(hyp.cleancache_put(1, 0, 0, 1), OpStatus::kSuccess);
  EXPECT_EQ(hyp.cleancache_put(1, 0, 1, 2), OpStatus::kSuccess);
  EXPECT_EQ(hyp.frontswap_put(2, 0, 0, 3), OpStatus::kSuccess);
  EXPECT_EQ(hyp.tmem_used(1), 1u);
  EXPECT_EQ(hyp.tmem_used(2), 1u);
}

TEST(HypervisorTest, OpsOnUnregisteredVm) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(10));
  EXPECT_EQ(hyp.frontswap_put(9, 0, 0, 1), OpStatus::kBadVm);
  EXPECT_FALSE(hyp.frontswap_get(9, 0, 0).has_value());
  EXPECT_EQ(hyp.frontswap_flush(9, 0, 0), OpStatus::kBadVm);
  EXPECT_THROW(hyp.vm_data(9), std::out_of_range);
}

TEST(HypervisorTest, UnregisterReleasesPages) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(4));
  hyp.register_vm(1);
  for (std::uint32_t i = 0; i < 4; ++i) (void)hyp.frontswap_put(1, 0, i, i);
  EXPECT_EQ(hyp.free_tmem(), 0u);
  hyp.unregister_vm(1);
  EXPECT_EQ(hyp.free_tmem(), 4u);
}

TEST(HypervisorTest, SnapshotMatchesTableI) {
  sim::Simulator sim;
  Hypervisor hyp(sim, config(50));
  hyp.register_vm(1);
  hyp.register_vm(2);
  hyp.set_targets({{1, 20}});
  (void)hyp.frontswap_put(1, 0, 0, 1);
  (void)hyp.frontswap_put(1, 0, 1, 2);
  const MemStats stats = hyp.snapshot();
  EXPECT_EQ(stats.total_tmem, 50u);
  EXPECT_EQ(stats.free_tmem, 48u);
  EXPECT_EQ(stats.vm_count, 2u);
  ASSERT_EQ(stats.vm.size(), 2u);
  EXPECT_EQ(stats.vm[0].vm_id, 1u);
  EXPECT_EQ(stats.vm[0].puts_total, 2u);
  EXPECT_EQ(stats.vm[0].puts_succ, 2u);
  EXPECT_EQ(stats.vm[0].tmem_used, 2u);
  EXPECT_EQ(stats.vm[0].mm_target, 20u);
  EXPECT_EQ(stats.vm[1].puts_total, 0u);
}

}  // namespace
}  // namespace smartmem::hyper
