// Cluster scaling figure: the two-level capacity hierarchy at rack scale.
//
// Sweeps the node count (1/2/4/8) x the inter-node hop latency x the
// node-level policy, running the hot/cold cluster experiment: node 0 runs
// usemem (sustained demand far past its tmem), the others run a
// RAM-resident graph variant and sit on idle capacity. Under global-static every node is pinned at its
// physical share, so the hot node fails puts exactly as a lone server
// would; under global-smart the GlobalManager shrinks the cold nodes'
// quotas, grows the hot node's past its physical capacity, and remote-tmem
// lending turns the difference into borrowed frames. The printed table and
// CSV report aggregate failed puts, remote traffic and makespan per cell.
//
// A 1-node cluster wires no rack machinery at all, so `--nodes 1` output is
// byte-identical to `--single` (the plain VirtualNode path) — CI diffs the
// two CSVs.
//
// Flags:
//   --scale/--reps/--seed/--jobs/--csv   as every figure bench
//   --sim-threads <n>        worker threads for the in-run parallel engine
//                            (1 = inline, 0 = hardware concurrency). Changes
//                            wall-clock only — the simulated results are
//                            byte-identical at any value, and CI md5-checks
//                            that after cutting the sim_threads CSV column.
//   --nodes <n>              restrict the sweep to one node count
//   --cluster-policy <p>     restrict to one policy (global-static,
//                            global-smart[:P]; default sweeps both)
//   --cluster-latency-x <f>  restrict to one inter-node latency multiplier
//                            (default sweeps x1 and x10 of the 5 ms hop)
//   --cluster-interval-x <f> global decision interval, in node sampling
//                            intervals (default 2)
//   --cluster-no-lending     disable remote-tmem lending
//   --single                 run the plain single-node path and emit rows
//                            with the same labels a 1-node cluster gets
//   --trace-out/--metrics-out/--audit-out   one extra observed 2-node (or
//                            --nodes) run with the obs pillars enabled
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/scenario.hpp"

namespace {

using namespace smartmem;

struct Options {
  double scale = 0.125;
  std::size_t reps = 3;
  std::uint64_t seed = 1;
  std::size_t jobs = 1;
  std::size_t sim_threads = 1;
  std::string csv_dir;
  std::size_t nodes = 0;  // 0 = sweep {1, 2, 4, 8, 16}
  std::string cluster_policy;  // empty = sweep both
  double latency_x = 0.0;      // 0 = sweep {1, 10}
  double interval_x = 2.0;
  bool lending = true;
  bool single = false;
  std::string trace_out;
  std::string metrics_out;
  std::string audit_out;
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "fig_cluster_scaling [--scale f] [--reps n] [--seed n] [--jobs n]\n"
      "  [--sim-threads n]\n"
      "  [--csv dir] [--nodes n] [--cluster-policy p] [--cluster-latency-x f]\n"
      "  [--cluster-interval-x f] [--cluster-no-lending] [--single]\n"
      "  [--trace-out f] [--metrics-out f] [--audit-out f]\n");
}

Options parse(int argc, char** argv) {
  Options o;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(stderr);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale") {
      o.scale = std::atof(next(i));
    } else if (arg == "--reps") {
      o.reps = static_cast<std::size_t>(std::atoll(next(i)));
    } else if (arg == "--seed") {
      o.seed = static_cast<std::uint64_t>(std::atoll(next(i)));
    } else if (arg == "--jobs") {
      o.jobs = static_cast<std::size_t>(std::atoll(next(i)));
    } else if (arg == "--sim-threads") {
      o.sim_threads = static_cast<std::size_t>(std::atoll(next(i)));
    } else if (arg == "--csv") {
      o.csv_dir = next(i);
    } else if (arg == "--nodes") {
      o.nodes = static_cast<std::size_t>(std::atoll(next(i)));
    } else if (arg == "--cluster-policy") {
      o.cluster_policy = next(i);
    } else if (arg == "--cluster-latency-x") {
      o.latency_x = std::atof(next(i));
    } else if (arg == "--cluster-interval-x") {
      o.interval_x = std::atof(next(i));
    } else if (arg == "--cluster-no-lending") {
      o.lending = false;
    } else if (arg == "--single") {
      o.single = true;
    } else if (arg == "--trace-out") {
      o.trace_out = next(i);
    } else if (arg == "--metrics-out") {
      o.metrics_out = next(i);
    } else if (arg == "--audit-out") {
      o.audit_out = next(i);
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(stderr);
      std::exit(2);
    }
  }
  if (o.reps == 0 || o.scale <= 0.0 ||
      (o.nodes != 0 && o.nodes > 64)) {
    std::fprintf(stderr, "bad option value\n");
    std::exit(2);
  }
  return o;
}

struct Cell {
  std::size_t nodes = 1;
  double lat_x = 1.0;
  std::string policy;
};

/// The plain single-node path (core::build_node + run), extracted into the
/// same result shape a 1-node cluster produces so the CSV rows match
/// byte-for-byte.
cluster::ClusterRunResult run_single_node(const Options& o,
                                          std::uint64_t seed) {
  const core::ScenarioSpec spec = core::usemem_scenario(o.scale);
  auto node = core::build_node(spec, mm::PolicySpec::smart(25.0), seed);
  const SimTime end = node->run(spec.deadline);

  cluster::ClusterRunResult out;
  out.makespan_s = to_seconds(end);
  cluster::ClusterNodeResult r;
  r.node = 0;
  r.scenario = spec.name;
  const hyper::Hypervisor& hyp = node->hypervisor();
  for (VmId vm : node->vm_ids()) {
    const hyper::VmData& vd = hyp.vm_data(vm);
    r.failed_puts += vd.cumul_puts_failed;
    r.puts_total += vd.cumul_puts_total;
    r.puts_succ += vd.cumul_puts_succ;
    if (node->runner(vm).started()) {
      r.runtime_s =
          std::max(r.runtime_s, to_seconds(node->runner(vm).finish_time()));
    }
  }
  r.remote_puts = hyp.remote_puts();
  r.remote_gets = hyp.remote_gets();
  r.final_quota = hyp.node_quota();
  r.phys_tmem = hyp.total_tmem();
  out.aggregate_failed_puts = r.failed_puts;
  out.nodes.push_back(std::move(r));
  return out;
}

cluster::ClusterRunResult run_cell(const Options& o, const Cell& cell,
                                   std::uint64_t seed) {
  if (o.single) return run_single_node(o, seed);
  cluster::ClusterExperimentConfig cfg;
  cfg.nodes = cell.nodes;
  cfg.scale = o.scale;
  cfg.seed = seed;
  cfg.global_policy = cell.policy;
  cfg.lending = o.lending;
  cfg.internode_latency_x = cell.lat_x;
  cfg.global_interval_x = o.interval_x;
  cfg.sim_threads = o.sim_threads;
  return cluster::run_cluster_scenario(cfg);
}

std::string quota_str(PageCount q) {
  if (q == kUnlimitedTarget) return "-1";
  return std::to_string(q);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  std::vector<std::size_t> node_counts =
      o.nodes != 0 ? std::vector<std::size_t>{o.nodes}
                   : std::vector<std::size_t>{1, 2, 4, 8, 16};
  if (o.single) node_counts = {1};
  const std::vector<double> lat_sweep =
      o.latency_x != 0.0 ? std::vector<double>{o.latency_x}
                         : std::vector<double>{1.0, 10.0};
  const std::vector<std::string> policy_sweep =
      !o.cluster_policy.empty()
          ? std::vector<std::string>{o.cluster_policy}
          : std::vector<std::string>{"global-static", "global-smart"};

  // A 1-node cluster ignores the rack knobs entirely, so only the first
  // (policy, latency) combination is run at n=1 — and --single emits rows
  // with those same labels, keeping the two CSVs diffable.
  std::vector<Cell> cells;
  for (const std::size_t n : node_counts) {
    for (const std::string& policy : policy_sweep) {
      for (const double lat : lat_sweep) {
        cells.push_back(Cell{n, lat, policy});
        if (n == 1) break;
      }
      if (n == 1) break;
    }
  }

  std::printf("=== cluster scaling: hot node + cold donors "
              "(usemem / cluster-cold, smart P=25%%) ===\n");
  std::printf("%zu cell(s) x %zu rep(s), scale %g, lending %s, "
              "sim-threads %zu\n\n",
              cells.size(), o.reps, o.scale, o.lending ? "on" : "off",
              o.sim_threads);

  // Per-run wall-clock is printed to stdout only — never to the CSV, which
  // must stay byte-identical across --sim-threads values.
  std::vector<cluster::ClusterRunResult> runs(cells.size() * o.reps);
  std::vector<double> wall(runs.size());
  parallel_for_each(o.jobs, runs.size(), [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    runs[i] = run_cell(o, cells[i / o.reps], o.seed + (i % o.reps));
    wall[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  });

  std::printf("%-6s %-14s %-6s %16s %12s %12s %12s %10s %9s\n", "nodes",
              "policy", "lat", "failed_puts", "remote_puts", "remote_gets",
              "borrowed_pk", "makespan", "wall");
  std::vector<double> mean_failed(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    RunningStats failed, makespan, wall_s;
    std::uint64_t rputs = 0, rgets = 0;
    PageCount peak = 0;
    for (std::size_t rep = 0; rep < o.reps; ++rep) {
      const cluster::ClusterRunResult& r = runs[c * o.reps + rep];
      failed.add(static_cast<double>(r.aggregate_failed_puts));
      makespan.add(r.makespan_s);
      wall_s.add(wall[c * o.reps + rep]);
      for (const auto& nr : r.nodes) {
        rputs += nr.remote_puts;
        rgets += nr.remote_gets;
      }
      peak = std::max(peak, r.peak_borrowed);
    }
    mean_failed[c] = failed.mean();
    std::printf(
        "%-6zu %-14s x%-5g %16.0f %12llu %12llu %12llu %9.1fs %8.2fs\n",
        cells[c].nodes, cells[c].policy.c_str(), cells[c].lat_x, failed.mean(),
        static_cast<unsigned long long>(rputs / o.reps),
        static_cast<unsigned long long>(rgets / o.reps),
        static_cast<unsigned long long>(peak), makespan.mean(), wall_s.mean());
  }

  // Headline: does the node-level Algorithm 4 beat the static split where
  // both ran at the same (nodes, latency) point?
  for (std::size_t a = 0; a < cells.size(); ++a) {
    if (cells[a].policy != "global-static" || cells[a].nodes < 2) continue;
    for (std::size_t b = 0; b < cells.size(); ++b) {
      if (cells[b].nodes != cells[a].nodes ||
          cells[b].lat_x != cells[a].lat_x ||
          cells[b].policy.rfind("global-smart", 0) != 0) {
        continue;
      }
      const double st = mean_failed[a];
      const double sm = mean_failed[b];
      if (st > 0) {
        std::printf("\n%zu nodes, lat x%g: global-smart aggregate failed "
                    "puts %.0f vs global-static %.0f (%+.1f%%)\n",
                    cells[a].nodes, cells[a].lat_x, sm, st,
                    (sm - st) / st * 100.0);
      }
    }
  }

  if (!o.csv_dir.empty()) {
    const std::string path = o.csv_dir + "/fig_cluster_scaling.csv";
    std::ofstream csv(path);
    // sim_threads is deliberately the second column: the CI determinism
    // check compares runs at different thread counts with that one column
    // cut away (`cut -d, -f2 --complement`), and everything else must be
    // byte-identical.
    csv << "nodes,sim_threads,latency_x,global_policy,lending,rep,node,"
           "scenario,failed_puts,puts_total,puts_succ,runtime_s,remote_puts,"
           "remote_gets,final_quota,makespan_s\n";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      for (std::size_t rep = 0; rep < o.reps; ++rep) {
        const cluster::ClusterRunResult& r = runs[c * o.reps + rep];
        for (const auto& nr : r.nodes) {
          char line[512];
          std::snprintf(line, sizeof line,
                        "%zu,%zu,%g,%s,%d,%zu,%u,%s,%llu,%llu,%llu,%.6f,%llu,"
                        "%llu,%s,%.6f\n",
                        cells[c].nodes, o.sim_threads, cells[c].lat_x,
                        cells[c].policy.c_str(), o.lending ? 1 : 0, rep,
                        nr.node, nr.scenario.c_str(),
                        static_cast<unsigned long long>(nr.failed_puts),
                        static_cast<unsigned long long>(nr.puts_total),
                        static_cast<unsigned long long>(nr.puts_succ),
                        nr.runtime_s,
                        static_cast<unsigned long long>(nr.remote_puts),
                        static_cast<unsigned long long>(nr.remote_gets),
                        quota_str(nr.final_quota).c_str(), r.makespan_s);
          csv << line;
        }
      }
    }
    std::printf("\nwrote %s\n", path.c_str());
  }

  if (!o.trace_out.empty() || !o.metrics_out.empty() || !o.audit_out.empty()) {
    // One extra observed run: rack observability needs >= 2 nodes, so the
    // GlobalManager/lending/fabric pillars actually record something.
    cluster::ClusterExperimentConfig cfg;
    cfg.nodes = std::max<std::size_t>(o.nodes != 0 ? o.nodes : 2, 2);
    cfg.scale = o.scale;
    cfg.seed = o.seed;
    cfg.global_policy = !o.cluster_policy.empty()
                            ? o.cluster_policy
                            : std::string("global-smart");
    cfg.lending = o.lending;
    cfg.internode_latency_x = o.latency_x != 0.0 ? o.latency_x : 1.0;
    cfg.global_interval_x = o.interval_x;
    cfg.sim_threads = o.sim_threads;
    cfg.obs.trace_out = o.trace_out;
    cfg.obs.metrics_out = o.metrics_out;
    cfg.obs.audit_out = o.audit_out;
    std::printf("\nobserved run: %zu nodes, %s\n", cfg.nodes,
                cfg.global_policy.c_str());
    cluster::run_cluster_scenario(cfg);
    if (!o.trace_out.empty()) std::printf("  trace:   %s\n", o.trace_out.c_str());
    if (!o.metrics_out.empty())
      std::printf("  metrics: %s\n", o.metrics_out.c_str());
    if (!o.audit_out.empty()) std::printf("  audit:   %s\n", o.audit_out.c_str());
  }
  return 0;
}
