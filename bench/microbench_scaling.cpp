// Perf-baseline harness: measures (a) serial vs. parallel wall-time of a
// mid-size scenario grid — the figure benches' policy x repetition fan-out —
// (b) raw events/sec of the two simulation hot paths (tmem store ops,
// simulator event dispatch), (c) the DESIGN §12 control-plane probes —
// modeled uplink bytes/interval full vs delta, and smart-alloc decide time
// classic vs O(changed-VMs) — and (d) the wall-time overhead of running with
// every observability pillar enabled (in-memory capture), then persists
// everything to a machine-readable JSON baseline so later PRs have a
// trajectory to compare against.
//
//   ./microbench_scaling [--scale f] [--reps n] [--jobs n] [--seed n]
//                        [--out path]
//
// Defaults: scale 0.0625, 3 reps, jobs 4, BENCH_baseline.json in the CWD.
// Wall-clock numbers are host-dependent (record the host next to the file);
// the speedup ratio is what the acceptance bar tracks: near-linear up to 4
// jobs on a >= 4-core host, and trivially ~1.0 on a single core.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/global_manager.hpp"
#include "cluster/global_policy.hpp"
#include "comm/channel.hpp"
#include "common/thread_pool.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "hyper/delta.hpp"
#include "mm/history.hpp"
#include "mm/smart_policy.hpp"
#include "obs/observer.hpp"
#include "sim/simulator.hpp"
#include "tmem/store.hpp"

namespace {

using namespace smartmem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ScalingOptions {
  double scale = 0.0625;
  std::size_t repetitions = 3;
  std::size_t jobs = 4;
  std::uint64_t base_seed = 1;
  std::string out = "BENCH_baseline.json";
};

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fprintf(stderr,
               "flags: --scale <f> --reps <n> --jobs <n> --seed <n> "
               "--out <path>\n");
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || text[0] == '-') {
    usage_error("malformed value '" + std::string(text) + "' for " + flag);
  }
  return static_cast<std::uint64_t>(v);
}

ScalingOptions parse(int argc, char** argv) {
  ScalingOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--scale") {
      char* end = nullptr;
      o.scale = std::strtod(next(), &end);
      if (o.scale <= 0) usage_error("--scale must be > 0");
    } else if (arg == "--reps") {
      o.repetitions = static_cast<std::size_t>(parse_u64(arg, next()));
    } else if (arg == "--jobs") {
      o.jobs = static_cast<std::size_t>(parse_u64(arg, next()));
      if (o.jobs == 0) o.jobs = ThreadPool::resolve_jobs(0);
    } else if (arg == "--seed") {
      o.base_seed = parse_u64(arg, next());
    } else if (arg == "--out") {
      o.out = next();
    } else if (arg == "--help" || arg == "-h") {
      usage_error("microbench_scaling");
    } else {
      usage_error("unknown flag " + arg);
    }
  }
  return o;
}

/// Wall-time of the fig03-style policy x rep grid at the given jobs count.
double time_grid(const ScalingOptions& o, std::size_t jobs) {
  const core::ScenarioSpec spec = core::scenario1(o.scale);
  const std::vector<mm::PolicySpec> policies = {
      mm::PolicySpec::greedy(),
      mm::PolicySpec::static_alloc(),
      mm::PolicySpec::reconf_static(),
      mm::PolicySpec::smart(0.75),
  };
  core::ExperimentConfig cfg;
  cfg.repetitions = o.repetitions;
  cfg.base_seed = o.base_seed;
  cfg.jobs = jobs;
  const auto start = Clock::now();
  const auto results = core::run_experiments(spec, policies, cfg);
  const double elapsed = seconds_since(start);
  if (results.size() != policies.size()) {
    std::fprintf(stderr, "grid run produced wrong result count\n");
    std::exit(1);
  }
  return elapsed;
}

/// Store hot path: the op mix the guest kernel generates under memory
/// pressure — frontswap put/get over a resident working set plus a steady
/// stream of cleancache (ephemeral) puts churning the eviction path once
/// the pool is full. Returns operations per wall-clock second.
double store_events_per_sec() {
  tmem::StoreConfig scfg;
  scfg.total_pages = 1 << 16;
  tmem::TmemStore store(scfg);
  const auto persistent = store.create_pool(1, tmem::PoolType::kPersistent);
  const auto ephemeral = store.create_pool(2, tmem::PoolType::kEphemeral);
  for (std::uint32_t i = 0; i < (1u << 15); ++i) {
    store.put(tmem::TmemKey{persistent, 0, i}, i | 1);  // resident swap set
  }

  constexpr std::uint32_t kOps = 6'000'000;
  const auto start = Clock::now();
  std::uint64_t sink = 0;
  for (std::uint32_t i = 0; i < kOps; ++i) {
    switch (i & 3u) {
      case 0:  // frontswap put (replaces in place across the working set)
        store.put(tmem::TmemKey{persistent, 0, i % (1u << 15)}, i | 1);
        break;
      case 1: {  // frontswap get (persistent hits stay in place)
        const auto hit =
            store.get(tmem::TmemKey{persistent, 0, (i * 13) % (1u << 15)});
        sink += hit ? *hit : 0;
        break;
      }
      default:  // cleancache put (ephemeral; evicts oldest once full)
        store.put(tmem::TmemKey{ephemeral, 1, i}, i | 1);
        break;
    }
  }
  const double elapsed = seconds_since(start);
  if (sink == 0xdeadbeef) std::printf("impossible\n");  // keep `sink` alive
  return static_cast<double>(kOps) / elapsed;
}

/// Store per-VM accounting probe: ns per slow-reclaim call
/// (evict_ephemeral_from_vm) on a store holding 64 VMs x 1024 ephemeral
/// pages each. The pre-index implementation walked the global LRU
/// filtering by owner — O(store size) per call even when nothing was
/// evictable; the per-VM intrusive list threaded through the entries makes
/// each call O(pages actually evicted). Evicted pages are re-put between
/// rounds (untimed) so every measured sweep does real work.
double store_account_ns() {
  tmem::StoreConfig scfg;
  scfg.total_pages = 1u << 17;
  tmem::TmemStore store(scfg);
  constexpr VmId kVms = 64;
  constexpr std::uint32_t kPagesPerVm = 1024;
  std::vector<tmem::PoolId> pools;
  pools.reserve(kVms);
  for (VmId vm = 1; vm <= kVms; ++vm) {
    pools.push_back(store.create_pool(vm, tmem::PoolType::kEphemeral));
  }
  auto fill = [&] {
    for (VmId vm = 1; vm <= kVms; ++vm) {
      for (std::uint32_t i = 0; i < kPagesPerVm; ++i) {
        store.put(tmem::TmemKey{pools[vm - 1], 0, i},
                  (static_cast<std::uint64_t>(vm) << 32) | i | 1);
      }
    }
  };
  fill();

  constexpr int kRounds = 64;
  constexpr PageCount kQuota = 8;
  std::uint64_t ns = 0;
  std::uint64_t calls = 0;
  std::uint64_t evicted = 0;
  for (int r = 0; r < kRounds; ++r) {
    const auto start = Clock::now();
    for (VmId vm = 1; vm <= kVms; ++vm) {
      evicted += store.evict_ephemeral_from_vm(vm, kQuota);
      ++calls;
    }
    ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    fill();  // untimed: restore the evicted pages for the next sweep
  }
  if (evicted != calls * kQuota) {
    std::fprintf(stderr, "store account probe evicted an unexpected count\n");
    std::exit(1);
  }
  return static_cast<double>(ns) / static_cast<double>(calls);
}

/// Simulator dispatch: schedule/fire chains with a periodic sampler and a
/// share of cancellations, mirroring the vCPU/disk/VIRQ event mix.
double sim_events_per_sec() {
  sim::Simulator sim;
  constexpr std::uint64_t kChains = 64;
  constexpr std::uint64_t kEventsPerChain = 40'000;
  std::uint64_t fired = 0;

  struct Chain {
    sim::Simulator* sim;
    std::uint64_t* fired;
    std::uint64_t remaining;
    void operator()() const {
      ++*fired;
      if (remaining > 0) {
        sim->schedule(7, Chain{sim, fired, remaining - 1});
      }
    }
  };
  for (std::uint64_t c = 0; c < kChains; ++c) {
    sim.schedule(static_cast<SimTime>(c + 1),
                 Chain{&sim, &fired, kEventsPerChain - 1});
  }
  auto sampler = sim.schedule_periodic(1000, [] {});
  // A slice of cancelled events models torn-down samplers/timeouts.
  for (int i = 0; i < 20000; ++i) {
    sim.schedule(500000 + i, [] {}).cancel();
  }

  const auto start = Clock::now();
  sim.run_until(static_cast<SimTime>(kEventsPerChain) * 8);
  sampler.cancel();
  sim.run();
  const double elapsed = seconds_since(start);
  return static_cast<double>(sim.executed_events()) / elapsed;
}

/// Channel hot path: messages/sec through comm::Channel<T> send/deliver,
/// the per-message cost the control plane adds over raw event dispatch.
/// 32 self-re-sending ping chains keep the in-flight map populated like a
/// busy fabric would.
double channel_msgs_per_sec() {
  sim::Simulator sim;
  comm::ChannelConfig cfg;
  cfg.name = "bench";
  cfg.latency = comm::LatencySpec::fixed_at(kMicrosecond);
  comm::Channel<std::uint64_t> chan(sim, cfg);

  constexpr std::uint64_t kChains = 32;
  constexpr std::uint64_t kMessages = 2'000'000;
  chan.open([&chan](const std::uint64_t& v) {
    if (v < kMessages) chan.send(v + kChains);
  });
  for (std::uint64_t c = 0; c < kChains; ++c) chan.send(c);

  const auto start = Clock::now();
  sim.run();
  const double elapsed = seconds_since(start);
  const auto delivered = chan.stats().delivered;
  if (delivered < kMessages / kChains) {
    std::fprintf(stderr, "channel bench delivered too few messages\n");
    std::exit(1);
  }
  return static_cast<double>(delivered) / elapsed;
}

/// Rack control-plane hot path: full GlobalManager decisions/sec at 4
/// nodes — roll-up ingestion, global-smart (node-level Algorithm 4 +
/// Equation 2) and quota fan-out. Roll-ups rotate which node reports
/// failed puts so every decision recomputes and re-sends a changed vector
/// (suppression never short-circuits the measured path).
double cluster_rebalance_per_sec() {
  sim::Simulator sim;
  cluster::GlobalManagerConfig gcfg;
  gcfg.suppress_unchanged = false;
  cluster::GlobalManager gm(
      sim, std::make_unique<cluster::GlobalSmartPolicy>(), gcfg);
  std::uint64_t sink = 0;
  gm.set_sender([&sink](cluster::NodeId, const cluster::NodeQuotaMsg& msg) {
    sink += msg.quota;
  });

  constexpr std::uint64_t kDecisions = 300'000;
  constexpr std::uint32_t kNodes = 4;
  const PageCount phys = 1u << 18;
  const auto start = Clock::now();
  for (std::uint64_t d = 0; d < kDecisions; ++d) {
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      cluster::NodeStats ns;
      ns.node = n;
      ns.seq = d + 1;
      ns.phys_tmem = phys;
      ns.quota = phys;
      ns.used = n == d % kNodes ? phys : phys / 8;
      ns.puts_total = 1000;
      ns.puts_succ = n == d % kNodes ? 900 : 1000;
      gm.on_node_stats(ns);
    }
    gm.decide();
  }
  const double elapsed = seconds_since(start);
  if (gm.decisions() != kDecisions || sink == 0) {
    std::fprintf(stderr, "cluster rebalance bench made no decisions\n");
    std::exit(1);
  }
  return static_cast<double>(kDecisions) / elapsed;
}

/// Control-plane encoding probe (DESIGN §12): modeled wire bytes per
/// sampling interval of the MemStats uplink at 128 VMs with 8 VMs changing
/// per interval, full-vector vs delta (resync every 16). Deterministic —
/// pure function of the wire-size model, no wall clock involved.
struct ControlBytes {
  double full_bpi = 0.0;
  double delta_bpi = 0.0;
};

ControlBytes control_bytes_probe() {
  constexpr std::size_t kVms = 128;
  constexpr std::size_t kIntervals = 512;
  constexpr std::size_t kDirty = 8;

  comm::DeltaConfig dcfg;
  dcfg.enabled = true;
  dcfg.resync_every = 16;
  hyper::StatsDeltaEncoder enc(dcfg);

  hyper::MemStats s;
  s.total_tmem = 1u << 18;
  s.free_tmem = 1u << 17;
  s.vm_count = kVms;
  s.vm.resize(kVms);
  for (std::size_t i = 0; i < kVms; ++i) {
    s.vm[i].vm_id = static_cast<VmId>(i + 1);
    s.vm[i].tmem_used = (1u << 18) / kVms;
  }

  std::uint64_t full_bytes = 0;
  std::uint64_t delta_bytes = 0;
  for (std::size_t interval = 1; interval <= kIntervals; ++interval) {
    for (std::size_t k = 0; k < kDirty; ++k) {
      auto& vm = s.vm[(interval * kDirty + k) % kVms];
      vm.puts_total += 100;
      vm.puts_succ += 90;
      vm.cumul_puts_failed += 10;
    }
    s.seq = interval;
    s.when = static_cast<SimTime>(interval) * kSecond;
    full_bytes += wire_size(s);
    delta_bytes += wire_size(enc.encode(s));
  }
  ControlBytes out;
  out.full_bpi = static_cast<double>(full_bytes) / kIntervals;
  out.delta_bpi = static_cast<double>(delta_bytes) / kIntervals;
  return out;
}

/// MM decide-time probe (DESIGN §12): ns per decision of smart-alloc over
/// 1024 VMs when only ~16 change per interval — the classic O(n) compute()
/// against the O(changed-VMs) decide_incremental() path. Both paths consume
/// the same mutation schedule (a rotating window of VMs alternating demand
/// spikes and slack); each folds its own outputs back into its sample so
/// the streams stay self-consistent. Wall-clock, host-dependent.
struct DecideProbe {
  double classic_ns = 0.0;
  double incremental_ns = 0.0;
};

DecideProbe mm_decide_probe() {
  constexpr std::size_t kVms = 1024;
  constexpr std::size_t kRounds = 1024;
  constexpr std::size_t kDirty = 8;
  const PageCount total = 1u << 20;

  auto make_stats = [&] {
    hyper::MemStats s;
    s.total_tmem = total;
    s.free_tmem = total / 2;
    s.vm_count = kVms;
    s.vm.resize(kVms);
    for (std::size_t i = 0; i < kVms; ++i) {
      s.vm[i].vm_id = static_cast<VmId>(i + 1);
      // Targets start at a quarter share: the occasional grows below fit
      // inside the remaining headroom, so the Eq. 2 renormalization (an
      // O(n) walk either way) stays out of the measured steady state and
      // the probe isolates the few-changes regime.
      s.vm[i].mm_target = total / (4 * kVms);
      s.vm[i].tmem_used = total / (4 * kVms);
    }
    return s;
  };

  // Mutates the round's window: counters churn (successful puts, usage
  // pinned on target) without tripping any Algorithm 4 condition; every
  // 16th round the first window VM fails its puts and earns a grow.
  // Entries touched the round before settle back (counters to zero), which
  // dirties them once more — exactly what a real sample stream does.
  auto mutate = [&](hyper::MemStats& s, std::size_t round,
                    std::vector<std::size_t>& dirty) {
    dirty.clear();
    if (round > 0) {
      for (std::size_t k = 0; k < kDirty; ++k) {
        const std::size_t i = ((round - 1) * kDirty + k) % kVms;
        s.vm[i].puts_total = 0;
        s.vm[i].puts_succ = 0;
        s.vm[i].tmem_used = s.vm[i].mm_target;
        dirty.push_back(i);
      }
    }
    for (std::size_t k = 0; k < kDirty; ++k) {
      const std::size_t i = (round * kDirty + k) % kVms;
      auto& vm = s.vm[i];
      if (k == 0 && round % 16 == 0) {
        vm.puts_total = 100;
        vm.puts_succ = 40;
        vm.cumul_puts_failed += 60;
      } else {
        vm.puts_total = 100;
        vm.puts_succ = 100;
      }
      dirty.push_back(i);
    }
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  };

  auto apply = [](hyper::MemStats& s, const hyper::MmOut& out) {
    for (const auto& t : out) {
      auto& vm = s.vm[t.vm_id - 1];
      vm.mm_target = t.mm_target;
      vm.tmem_used = t.mm_target;
    }
  };

  DecideProbe probe;
  const mm::SmartPolicyConfig pcfg{};  // defaults: P=0.75%, stale off

  {  // classic full-vector compute()
    mm::SmartPolicy policy(pcfg);
    mm::StatsHistory history;
    mm::PolicyContext ctx;
    ctx.total_tmem = total;
    ctx.history = &history;
    hyper::MemStats s = make_stats();
    std::vector<std::size_t> dirty;
    std::uint64_t ns = 0;
    for (std::size_t r = 0; r < kRounds; ++r) {
      mutate(s, r, dirty);
      s.seq = r + 1;
      history.record(s);
      const auto start = Clock::now();
      const hyper::MmOut out = policy.compute(s, ctx);
      ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count());
      apply(s, out);
    }
    probe.classic_ns = static_cast<double>(ns) / kRounds;
  }

  {  // O(changed-VMs) decide_incremental()
    mm::SmartPolicy policy(pcfg);
    if (!policy.supports_incremental()) {
      std::fprintf(stderr, "smart policy lost incremental support\n");
      std::exit(1);
    }
    mm::StatsHistory history;
    mm::PolicyContext ctx;
    ctx.total_tmem = total;
    ctx.history = &history;
    hyper::MemStats s = make_stats();
    std::vector<std::size_t> dirty;
    std::vector<std::size_t> all(kVms);
    for (std::size_t i = 0; i < kVms; ++i) all[i] = i;
    std::uint64_t ns = 0;
    for (std::size_t r = 0; r < kRounds; ++r) {
      mutate(s, r, dirty);
      s.seq = r + 1;
      history.record(s);
      // Round 0 passes every index: the policy builds its materialized
      // state from scratch, exactly as on a VM-set change.
      const std::vector<std::size_t>& idx = r == 0 ? all : dirty;
      const auto start = Clock::now();
      const std::vector<hyper::MmTarget> out =
          policy.decide_incremental(s, idx, ctx);
      ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count());
      apply(s, out);
    }
    probe.incremental_ns = static_cast<double>(ns) / kRounds;
  }
  return probe;
}

/// Observability overhead: seeded smart-policy runs of the SAME scenario-1
/// grid cell with all three obs pillars capturing in memory (no file I/O)
/// vs. obs off. Both variants share one node config, so the delta is pure
/// instrumentation cost. The on-config samples the two hot guest-path span
/// families 1-in-8 (TraceConfig::sample_every) — the shipped default for
/// heavy observed runs; everything else records unconditionally.
///
/// Noise discipline, sized for a shared 1-core CI box whose adjacent
/// identical runs can differ by 25%: the probe halves the scenario scale
/// (shorter runs -> more repetitions in the same wall budget), interleaves
/// 20 off/on pairs so background drift biases both variants equally, and
/// times each side twice per pair keeping the minimum (for a CPU-bound run
/// the minimum is the least-perturbed observation — spikes only ever add
/// time). It reports the median pair ratio; the ± spread is the standard
/// error of that median (1.2533 * 1.4826 * MAD / sqrt(n)) — the
/// uncertainty of the *reported number*, which tightens with sample count,
/// rather than the raw pair range, which a single noisy neighbor widens
/// forever. The <5% acceptance bar is judged against median and SE.
struct ObsOverhead {
  double pct = 0.0;     // median over pairs
  double spread = 0.0;  // ± standard error of the median, in pct points
};

ObsOverhead obs_overhead(const ScalingOptions& o) {
  const double probe_scale = o.scale / 2.0;
  const core::ScenarioSpec spec = core::scenario1(probe_scale);
  const mm::PolicySpec policy = mm::PolicySpec::smart(0.75);
  const std::size_t pairs = 20;

  auto timed_run = [&](const core::NodeConfig* overrides) {
    const auto start = Clock::now();
    core::run_scenario(spec, policy, o.base_seed, overrides);
    return seconds_since(start);
  };
  auto best_of_two = [&](const core::NodeConfig* overrides) {
    return std::min(timed_run(overrides), timed_run(overrides));
  };

  core::NodeConfig off_cfg = core::scaled_node_defaults(probe_scale);
  core::NodeConfig on_cfg = core::scaled_node_defaults(probe_scale);
  on_cfg.obs = obs::ObsConfig::capture_all();
  // The shipped default for heavy observed runs: hot guest-path spans
  // sampled 1-in-8, everything else recording unconditionally.
  on_cfg.obs.trace_sample_every = 8;
  // One throwaway pair warms the allocator and page-cache state so the
  // first measured pair is not systematically slower.
  timed_run(&off_cfg);
  timed_run(&on_cfg);
  std::vector<double> pct;
  for (std::size_t r = 0; r < pairs; ++r) {
    const double off = best_of_two(&off_cfg);
    const double on = best_of_two(&on_cfg);
    if (off > 0) pct.push_back(100.0 * (on - off) / off);
  }
  ObsOverhead out;
  if (pct.empty()) return out;
  std::sort(pct.begin(), pct.end());
  out.pct = pct[pct.size() / 2];
  std::vector<double> dev;
  dev.reserve(pct.size());
  for (const double p : pct) dev.push_back(std::fabs(p - out.pct));
  std::sort(dev.begin(), dev.end());
  const double mad = dev[dev.size() / 2];
  out.spread = 1.2533 * 1.4826 * mad / std::sqrt(static_cast<double>(pct.size()));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const ScalingOptions opts = parse(argc, argv);
  const std::size_t hw = ThreadPool::resolve_jobs(0);
  // A speedup figure measured with more jobs than hardware threads says
  // nothing about the engine — publish it flagged as unreliable rather than
  // letting a 1-core CI box record "speedup_j4 = 0.92" as a regression.
  const bool speedup_reliable = hw >= opts.jobs && hw > 1;

  std::printf("== microbench_scaling ==\n");
  std::printf("host: %zu hardware thread(s); measuring jobs=%zu%s\n\n", hw,
              opts.jobs,
              speedup_reliable
                  ? ""
                  : "  [speedup UNRELIABLE: fewer cores than jobs]");

  std::printf("[1/5] figure grid, serial (4 policies x %zu reps, scale %g)\n",
              opts.repetitions, opts.scale);
  const double serial_s = time_grid(opts, 1);
  std::printf("      %.3f s\n", serial_s);

  std::printf("[2/5] figure grid, %zu jobs\n", opts.jobs);
  const double parallel_s = time_grid(opts, opts.jobs);
  const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
  std::printf("      %.3f s  (speedup %.2fx)\n", parallel_s, speedup);

  std::printf("[3/5] hot paths\n");
  const double store_eps = store_events_per_sec();
  std::printf("      tmem store: %.3g ops/s\n", store_eps);
  const double account_ns = store_account_ns();
  std::printf("      store per-VM reclaim: %.0f ns/call (64 VMs, quota 8)\n",
              account_ns);
  const double sim_eps = sim_events_per_sec();
  std::printf("      simulator:  %.3g events/s\n", sim_eps);
  const double chan_mps = channel_msgs_per_sec();
  std::printf("      channel:    %.3g msgs/s\n", chan_mps);
  const double rebalance_ps = cluster_rebalance_per_sec();
  std::printf("      cluster gm: %.3g rebalances/s (4 nodes)\n", rebalance_ps);

  std::printf("[4/5] control plane (DESIGN 12: delta encoding, O(changed) decide)\n");
  const ControlBytes cb = control_bytes_probe();
  std::printf("      uplink bytes/interval: full %.1f, delta %.1f (%.1fx)\n",
              cb.full_bpi, cb.delta_bpi,
              cb.delta_bpi > 0 ? cb.full_bpi / cb.delta_bpi : 0.0);
  const DecideProbe dp = mm_decide_probe();
  std::printf("      mm decide (1024 VMs, ~16 dirty): classic %.0f ns, "
              "incremental %.0f ns (%.1fx)\n",
              dp.classic_ns, dp.incremental_ns,
              dp.incremental_ns > 0 ? dp.classic_ns / dp.incremental_ns : 0.0);

  std::printf("[5/5] observability overhead (all pillars, in-memory)\n");
  const ObsOverhead obs = obs_overhead(opts);
  std::printf("      %+.2f%% +/- %.2f%% vs. obs-off "
              "(median of 20 best-of-2 pairs +/- SE, "
              "hot spans sampled 1-in-8)\n",
              obs.pct, obs.spread);

  std::ofstream out(opts.out);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", opts.out.c_str());
    return 1;
  }
  char buf[1536];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"schema\": 1,\n"
                "  \"hardware_concurrency\": %zu,\n"
                "  \"grid\": {\n"
                "    \"scale\": %g,\n"
                "    \"policies\": 4,\n"
                "    \"repetitions\": %zu,\n"
                "    \"serial_s\": %.4f,\n"
                "    \"parallel_s\": %.4f,\n"
                "    \"jobs\": %zu\n"
                "  },\n"
                "  \"speedup_j%zu\": %.3f,\n"
                "  \"speedup_reliable\": %s,\n"
                "  \"events_per_sec\": %.1f,\n"
                "  \"store_account_ns\": %.1f,\n"
                "  \"sim_events_per_sec\": %.1f,\n"
                "  \"comm_msgs_per_sec\": %.1f,\n"
                "  \"cluster_rebalance_per_sec\": %.1f,\n"
                "  \"control_bytes_per_interval_full\": %.1f,\n"
                "  \"control_bytes_per_interval_delta\": %.1f,\n"
                "  \"mm_decide_ns_classic\": %.1f,\n"
                "  \"mm_decide_ns_incremental\": %.1f,\n"
                "  \"obs_overhead_pct\": %.2f,\n"
                "  \"obs_overhead_spread_pct\": %.2f\n"
                "}\n",
                hw, opts.scale, opts.repetitions, serial_s, parallel_s,
                opts.jobs, opts.jobs, speedup,
                speedup_reliable ? "true" : "false", store_eps, account_ns,
                sim_eps, chan_mps, rebalance_ps, cb.full_bpi, cb.delta_bpi,
                dp.classic_ns, dp.incremental_ns, obs.pct, obs.spread);
  out << buf;
  std::printf("\nwrote %s\n", opts.out.c_str());
  return 0;
}
