// Figure 8: tmem use of all VMs in the usemem scenario for (a) greedy,
// (b) reconf-static and (c) smart-alloc with P = 2%.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  bench::run_usage_figure(
      "fig08", "Tmem use of all VMs in the usemem scenario",
      core::usemem_scenario,
      {mm::PolicySpec::greedy(), mm::PolicySpec::reconf_static(),
       mm::PolicySpec::smart(2.0)},
      opts);
  return 0;
}
