// Ablation: the control-plane fabric (src/comm).
//
// The paper's management loop rides VIRQ -> netlink -> hypercall hops, so
// every decision acts on data roughly one sampling interval stale. This
// bench quantifies how much staleness and delivery faults actually cost:
// it sweeps the uplink latency at x{1, 10, 100} of its base value (the base
// is sample_interval / 40, so x40 would be exactly one sampling interval —
// the paper's worst case — and x100 leaves ~2.5 samples in flight, enough
// to make the capacity-2 queue bind and the three queue policies diverge)
// crossed with per-hop fault rates {0, 1%, 10%} (loss and duplication each,
// so the sequence-rejection path is exercised end-to-end), once per
// bounded-queue policy, and prints the mean VM runtime delta against the
// fault-free baseline plus the channel and stale-sequence counters that
// explain it.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace {

using namespace smartmem;

struct Cell {
  comm::QueuePolicy policy = comm::QueuePolicy::kDropNewest;
  double lat_x = 1.0;
  double loss = 0.0;
  std::size_t queue = 0;  // 0 = unbounded (the baseline wiring)
  bool ack = false;       // TKM downlink target ack/retry
  bool suppress = true;   // MM suppression of unchanged target vectors
  mm::StaleMode stale = mm::StaleMode::kOff;  // smart-alloc staleness mode
  bool adaptive = false;  // MM-driven dynamic sampling interval
};

/// Counters from one seeded run (runtimes are one entry per VM).
struct RepResult {
  std::vector<double> runtimes;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;        // loss + queue + down, both hops
  std::uint64_t backpressured = 0;  // both hops
  std::uint64_t stale = 0;          // MM + hypervisor sequence rejects
  std::uint64_t retransmits = 0;    // TKM ack-timeout target resends
  std::uint64_t stale_decisions = 0;  // decisions skipped/widened for age
  std::uint64_t ivl_changes = 0;      // accepted interval retunes
};

RepResult run_rep(const core::ScenarioSpec& spec, const bench::Options& opts,
                  const Cell& cell, std::uint64_t seed) {
  core::NodeConfig cfg = core::scaled_node_defaults(opts.scale);
  const auto base = static_cast<double>(cfg.sample_interval) / 40.0;
  cfg.comm.uplink.latency =
      comm::LatencySpec::fixed_at(static_cast<SimTime>(base * cell.lat_x));
  cfg.comm.uplink.faults.loss_rate = cell.loss;
  cfg.comm.uplink.faults.duplication_rate = cell.loss;
  cfg.comm.downlink.faults.loss_rate = cell.loss;
  cfg.comm.downlink.faults.duplication_rate = cell.loss;
  cfg.comm.uplink.queue_capacity = cell.queue;
  cfg.comm.downlink.queue_capacity = cell.queue;
  cfg.comm.uplink.queue_policy = cell.policy;
  cfg.comm.downlink.queue_policy = cell.policy;
  cfg.comm.ack_targets = cell.ack;
  cfg.mm_suppress_unchanged = cell.suppress;
  cfg.adaptive_interval.enabled = cell.adaptive;

  mm::PolicySpec policy = mm::PolicySpec::smart(6.0);
  policy.smart_config.stale_mode = cell.stale;

  auto node = core::build_node(spec, policy, seed, &cfg);
  node->run(spec.deadline);

  RepResult r;
  for (VmId id : node->vm_ids()) {
    r.runtimes.push_back(to_seconds(node->runner(id).finish_time() -
                                    node->runner(id).start_time()));
  }
  const comm::ChannelStats& up = node->tkm()->uplink().stats();
  const comm::ChannelStats& down = node->tkm()->downlink().stats();
  r.delivered = up.delivered + down.delivered;
  r.dropped = up.dropped_loss + up.dropped_queue + up.dropped_down +
              down.dropped_loss + down.dropped_queue + down.dropped_down;
  r.backpressured = up.backpressured + down.backpressured;
  r.stale = node->manager()->stale_samples_dropped() +
            node->hypervisor().stale_targets_dropped();
  r.retransmits = node->tkm()->target_retransmits();
  r.stale_decisions = node->manager()->policy().stale_decisions();
  if (const auto* ctl = node->manager()->interval_controller()) {
    r.ivl_changes = ctl->changes();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  const core::ScenarioSpec spec = core::scenario2(opts.scale);

  std::printf("=== ablation: control-plane latency & faults "
              "(scenario 2, smart P=6%%) ===\n");
  std::printf("uplink base latency = sample_interval/40: x40 = one interval\n");
  std::printf("stale (the paper's ~1 s path), x100 keeps ~2.5 samples in\n");
  std::printf("flight so the capacity-2 queue binds. 'flt' injects loss AND\n");
  std::printf("duplication at the given rate on both hops; 'stale' counts\n");
  std::printf("sequence-rejected deliveries (duplicates caught end-to-end).\n\n");

  // Cell 0 is the fault-free baseline every delta is measured against; the
  // grid proper is policy x latency x loss with a capacity-2 queue.
  std::vector<Cell> cells;
  cells.push_back(Cell{});
  const comm::QueuePolicy policies[] = {comm::QueuePolicy::kDropNewest,
                                        comm::QueuePolicy::kDropOldest,
                                        comm::QueuePolicy::kBackpressure};
  for (const auto policy : policies) {
    for (const double lat_x : {1.0, 10.0, 100.0}) {
      for (const double loss : {0.0, 0.01, 0.10}) {
        cells.push_back(Cell{policy, lat_x, loss, 2});
      }
    }
  }

  // Second grid: downlink target ack/retry x MM suppression under loss
  // (unbounded queue, base latency). With suppression on, a lost target
  // vector is NOT repaired by the next interval — the MM sees an unchanged
  // vector and stays silent — so the hypervisor can run on a stale target
  // for many intervals unless the TKM retransmits; with suppression off the
  // periodic resend masks loss at the cost of redundant hypercalls.
  const std::size_t ack_grid_start = cells.size();
  for (const bool suppress : {true, false}) {
    for (const bool ack : {false, true}) {
      for (const double loss : {0.01, 0.10}) {
        Cell cell;
        cell.loss = loss;
        cell.ack = ack;
        cell.suppress = suppress;
        cells.push_back(cell);
      }
    }
  }

  // Third grid: the adaptive control plane against exactly the staleness
  // regime that hurts the fixed loop. drop-oldest at x100 latency keeps
  // ~2.5 samples in flight; a capacity-3 queue is the livelock point where
  // messages survive but every delivery is perpetually ~2.5 intervals old.
  // (Capacity 2 is total starvation — nothing is ever delivered, so no
  // controller can help; the integration test pins that separately.) Stale
  // modes let smart-alloc skip or widen decisions on old samples, and the
  // adaptive interval stretches the cadence until deliveries stop queueing.
  const std::size_t adaptive_grid_start = cells.size();
  for (const double lat_x : {40.0, 100.0}) {
    for (const auto stale :
         {mm::StaleMode::kOff, mm::StaleMode::kSkip, mm::StaleMode::kWiden}) {
      for (const bool adaptive : {false, true}) {
        Cell cell;
        cell.policy = comm::QueuePolicy::kDropOldest;
        cell.lat_x = lat_x;
        cell.queue = 3;
        cell.stale = stale;
        cell.adaptive = adaptive;
        cells.push_back(cell);
      }
    }
  }

  // Every (cell, rep) run is independent; fan the whole grid out and
  // aggregate in deterministic order afterwards.
  const std::size_t reps = opts.repetitions;
  std::vector<RepResult> runs(cells.size() * reps);
  parallel_for_each(opts.jobs, runs.size(), [&](std::size_t i) {
    runs[i] = run_rep(spec, opts, cells[i / reps],
                      opts.base_seed + (i % reps));
  });

  std::vector<RunningStats> runtime(cells.size());
  std::vector<RepResult> totals(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const RepResult& r = runs[c * reps + rep];
      for (const double t : r.runtimes) runtime[c].add(t);
      totals[c].delivered += r.delivered;
      totals[c].dropped += r.dropped;
      totals[c].backpressured += r.backpressured;
      totals[c].stale += r.stale;
      totals[c].retransmits += r.retransmits;
      totals[c].stale_decisions += r.stale_decisions;
      totals[c].ivl_changes += r.ivl_changes;
    }
  }

  const double baseline = runtime[0].mean();
  std::printf("baseline (lat x1, loss 0, unbounded): mean VM runtime %.2f s "
              "over %zu rep(s)\n", baseline, reps);

  std::size_t c = 1;
  for (const auto policy : policies) {
    std::printf("\n--- queue policy: %s (capacity 2) ---\n",
                comm::to_string(policy));
    std::printf("%-8s %-6s %12s %8s %10s %9s %6s %7s\n", "lat", "flt",
                "mean VM (s)", "delta", "delivered", "dropped", "bp",
                "stale");
    for (int grid = 0; grid < 9; ++grid, ++c) {
      const Cell& cell = cells[c];
      const double mean = runtime[c].mean();
      const double delta =
          baseline > 0 ? (mean - baseline) / baseline * 100.0 : 0.0;
      std::printf("x%-7g %-6g %12.2f %+7.1f%% %10llu %9llu %6llu %7llu\n",
                  cell.lat_x, cell.loss, mean, delta,
                  static_cast<unsigned long long>(totals[c].delivered / reps),
                  static_cast<unsigned long long>(totals[c].dropped / reps),
                  static_cast<unsigned long long>(totals[c].backpressured /
                                                  reps),
                  static_cast<unsigned long long>(totals[c].stale / reps));
    }
  }

  std::printf("\n--- downlink target ack/retry x MM suppression "
              "(lat x1, unbounded queue) ---\n");
  std::printf("%-9s %-5s %-6s %12s %8s %10s %9s %6s\n", "suppress", "ack",
              "flt", "mean VM (s)", "delta", "delivered", "retx", "stale");
  for (c = ack_grid_start; c < adaptive_grid_start; ++c) {
    const Cell& cell = cells[c];
    const double mean = runtime[c].mean();
    const double delta =
        baseline > 0 ? (mean - baseline) / baseline * 100.0 : 0.0;
    std::printf("%-9s %-5s %-6g %12.2f %+7.1f%% %10llu %9llu %6llu\n",
                cell.suppress ? "on" : "off", cell.ack ? "on" : "off",
                cell.loss, mean, delta,
                static_cast<unsigned long long>(totals[c].delivered / reps),
                static_cast<unsigned long long>(totals[c].retransmits / reps),
                static_cast<unsigned long long>(totals[c].stale / reps));
  }

  std::printf("\n--- adaptive control plane at the staleness cliff "
              "(drop-oldest, capacity 3, loss 0) ---\n");
  std::printf("%-8s %-7s %-9s %12s %8s %10s %9s %8s\n", "lat", "stale",
              "adaptive", "mean VM (s)", "delta", "delivered", "skipped",
              "retunes");
  for (c = adaptive_grid_start; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    const double mean = runtime[c].mean();
    const double delta =
        baseline > 0 ? (mean - baseline) / baseline * 100.0 : 0.0;
    std::printf(
        "x%-7g %-7s %-9s %12.2f %+7.1f%% %10llu %9llu %8llu\n", cell.lat_x,
        mm::to_string(cell.stale), cell.adaptive ? "on" : "off", mean, delta,
        static_cast<unsigned long long>(totals[c].delivered / reps),
        static_cast<unsigned long long>(totals[c].stale_decisions / reps),
        static_cast<unsigned long long>(totals[c].ivl_changes / reps));
  }
  return 0;
}
