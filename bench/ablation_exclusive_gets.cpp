// Ablation: frontswap get semantics.
//
// With non-exclusive gets (the paper's Linux 3.19 stack) a swapped-in page
// keeps its tmem copy until re-dirtied, so tmem capacity stays pinned to
// whoever claimed it first — that is the sticky hoarding visible in the
// paper's Figure 4(a)/6(a). With exclusive (destructive) gets the pool
// turns over page by page and greedy becomes nearly work-conserving. This
// bench shows both regimes on Scenario 2.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  const core::ScenarioSpec spec = core::scenario2(opts.scale);

  std::printf("=== ablation: exclusive vs non-exclusive frontswap gets "
              "(scenario 2) ===\n\n");
  std::printf("%-14s %-14s %10s %10s %10s %14s\n", "gets", "policy", "VM1 (s)",
              "VM2 (s)", "VM3 (s)", "disk swapins");

  for (const bool exclusive : {true, false}) {
    for (const auto& policy :
         {mm::PolicySpec::greedy(), mm::PolicySpec::smart(6.0)}) {
      core::NodeConfig cfg = core::scaled_node_defaults(opts.scale);
      cfg.frontswap_exclusive_gets = exclusive;
      RunningStats vm_time[3];
      std::uint64_t disk_swapins = 0;
      for (std::size_t rep = 0; rep < opts.repetitions; ++rep) {
        auto node =
            core::build_node(spec, policy, opts.base_seed + rep, &cfg);
        node->run(spec.deadline);
        for (VmId id : node->vm_ids()) {
          vm_time[id - 1].add(to_seconds(node->runner(id).finish_time() -
                                         node->runner(id).start_time()));
          disk_swapins += node->kernel(id).stats().swapins_disk;
        }
      }
      std::printf("%-14s %-14s %10.2f %10.2f %10.2f %14llu\n",
                  exclusive ? "exclusive" : "non-exclusive",
                  policy.label().c_str(), vm_time[0].mean(), vm_time[1].mean(),
                  vm_time[2].mean(),
                  static_cast<unsigned long long>(disk_swapins /
                                                  opts.repetitions));
    }
  }
  std::printf(
      "\nNon-exclusive gets pin tmem to whoever put first: total disk\n"
      "traffic explodes, and depending on launch jitter one early VM can\n"
      "hoard the whole pool outright (the paper's Figure 4a/6a pathology).\n");
  return 0;
}
