// Fleet scaling figure: the control plane at nodes x VMs/node scale.
//
// Sweeps the fleet geometry (node count x tenants per node) x the control-
// plane encoding (classic full-vector vs DESIGN §12 delta) under the
// multi-tenant fleet workload: zipf-ranked tenant intensity (node 0 holds
// the hottest tenants), staggered arrivals, YCSB-style phase mixes. The
// simulated outcome (failed puts, makespan, decisions) is byte-identical
// between the two encodings — the sweep isolates what the encodings cost:
// control-plane payload bytes per sampling interval, resync counts, and
// the suppression counters, all reported in the trailing CSV columns.
//
// CSV layout contract (checked by CI):
//   - columns 1-11 (nodes..makespan_s) are encoding-independent: a
//     `--fleet-encoding delta` run and a `--fleet-encoding full` run md5
//     to the same value after `cut -d, -f1-11`.
//   - column 2 is sim_threads: runs at different --sim-threads md5 to the
//     same value after `cut -d, -f2 --complement`.
//   - wall-clock and the mm_decide_ns probe are printed to stdout only.
//
// Flags (all values strictly validated; garbage exits with status 2):
//   --scale/--reps/--seed/--jobs/--csv   as every figure bench
//   --sim-threads n          parallel-engine workers (output-invariant)
//   --fleet-nodes n          restrict to one node count (default sweep 2,4,8)
//   --fleet-vms n            tenants per node (default 8)
//   --fleet-skew f           zipf exponent of tenant intensity (default 0.8)
//   --fleet-mix m            read-heavy | balanced | write-heavy
//   --fleet-policy p         global-static | global-smart[:P]
//   --fleet-encoding e       delta | full | both (default both)
//   --fleet-resync n         delta resync cadence (default 16)
//   --fleet-incremental      O(changed-VMs) MM decide path
//   --fleet-demand-weighted  demand-weighted lending credit split
//   --fleet-no-lending       disable remote-tmem lending
//   --fleet-lending-heavy    hot-node/cold-donor geometry (node 0 spills at
//                            1.6x usable RAM, others fit at 0.55x) so the
//                            borrow path actually runs
//   --fleet-async-lending    borrows as fabric round trips (DESIGN §15)
//   --fleet-lend-cache n     borrower-side cache capacity in pages (0 = off)
//   --fleet-lend-rtt-x f     multiply the lending-hop wire latencies
//   --fleet-lend-loss p      per-message loss probability on both lend hops
//   --fleet-lend-reorder p   per-message reorder probability on both hops
//   --fleet-lend-outage-from-s s / --fleet-lend-outage-dur-s d
//                            outage window on both lend hops
//                            (async lending runs also write fleet_lending.csv
//                            with --csv: deterministic columns only, no
//                            sim_threads column, md5-comparable across
//                            --sim-threads)
//   --profile                engine self-profile: per-shard busy/barrier-wait/
//                            injection table + bottleneck attribution (stdout;
//                            fleet_profile.csv with --csv). Wall-clock only —
//                            fig_fleet_scaling.csv stays byte-identical.
//   --trace-sample n         keep 1-in-n hot-path spans in the observed run
//   --trace-out/--metrics-out/--audit-out f
//                            one extra observed run (first cell geometry)
//                            exporting the requested pillars; feed the
//                            metrics file to obs_inspect.py fleet-report
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/fleet.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace {

using namespace smartmem;

struct Options {
  double scale = 0.125;
  std::size_t reps = 2;
  std::uint64_t seed = 1;
  std::size_t jobs = 1;
  std::size_t sim_threads = 1;
  std::string csv_dir;
  std::size_t nodes = 0;  // 0 = sweep {2, 4, 8}
  std::size_t vms = 8;
  double skew = 0.8;
  workloads::FleetMix mix = workloads::FleetMix::kBalanced;
  std::string policy = "global-smart";
  std::string encoding = "both";  // delta | full | both
  std::uint64_t resync = 16;
  bool incremental = false;
  bool demand_weighted = false;
  bool lending = true;
  bool lending_heavy = false;
  bool async_lending = false;
  std::uint64_t lend_cache = 0;
  double lend_rtt_x = 1.0;
  double lend_loss = 0.0;
  double lend_reorder = 0.0;
  double lend_outage_from_s = -1.0;
  double lend_outage_dur_s = 0.0;
  bool profile = false;
  std::uint64_t trace_sample = 1;
  std::string trace_out;
  std::string metrics_out;
  std::string audit_out;
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "fig_fleet_scaling [--scale f] [--reps n] [--seed n] [--jobs n]\n"
      "  [--sim-threads n] [--csv dir]\n"
      "  [--fleet-nodes n] [--fleet-vms n] [--fleet-skew f]\n"
      "  [--fleet-mix read-heavy|balanced|write-heavy]\n"
      "  [--fleet-policy p] [--fleet-encoding delta|full|both]\n"
      "  [--fleet-resync n] [--fleet-incremental] [--fleet-demand-weighted]\n"
      "  [--fleet-no-lending] [--fleet-lending-heavy] [--fleet-async-lending]\n"
      "  [--fleet-lend-cache n] [--fleet-lend-rtt-x f] [--fleet-lend-loss p]\n"
      "  [--fleet-lend-reorder p] [--fleet-lend-outage-from-s s]\n"
      "  [--fleet-lend-outage-dur-s d] [--profile] [--trace-sample n]\n"
      "  [--trace-out f] [--metrics-out f] [--audit-out f]\n");
}

[[noreturn]] void bad_value(const char* flag, const char* value) {
  std::fprintf(stderr, "bad value for %s: '%s'\n", flag, value);
  usage(stderr);
  std::exit(2);
}

/// Strict numeric parsers: the whole token must convert, and the result
/// must sit inside the flag's valid range.
std::uint64_t parse_u64(const char* flag, const char* value,
                        std::uint64_t min, std::uint64_t max) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0' || v < min || v > max) {
    bad_value(flag, value);
  }
  return static_cast<std::uint64_t>(v);
}

double parse_f64(const char* flag, const char* value, double min, double max) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (errno != 0 || end == value || *end != '\0' || !(v >= min) || !(v <= max)) {
    bad_value(flag, value);
  }
  return v;
}

Options parse(int argc, char** argv) {
  Options o;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(stderr);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale") {
      o.scale = parse_f64("--scale", next(i), 1e-3, 16.0);
    } else if (arg == "--reps") {
      o.reps = parse_u64("--reps", next(i), 1, 1000);
    } else if (arg == "--seed") {
      o.seed = parse_u64("--seed", next(i), 0, UINT64_MAX);
    } else if (arg == "--jobs") {
      o.jobs = parse_u64("--jobs", next(i), 0, 4096);
    } else if (arg == "--sim-threads") {
      o.sim_threads = parse_u64("--sim-threads", next(i), 0, 4096);
    } else if (arg == "--csv") {
      o.csv_dir = next(i);
    } else if (arg == "--fleet-nodes") {
      o.nodes = parse_u64("--fleet-nodes", next(i), 2, 256);
    } else if (arg == "--fleet-vms") {
      o.vms = parse_u64("--fleet-vms", next(i), 1, 256);
    } else if (arg == "--fleet-skew") {
      o.skew = parse_f64("--fleet-skew", next(i), 0.0, 4.0);
    } else if (arg == "--fleet-mix") {
      const char* v = next(i);
      if (!workloads::parse_fleet_mix(v, o.mix)) bad_value("--fleet-mix", v);
    } else if (arg == "--fleet-policy") {
      o.policy = next(i);
    } else if (arg == "--fleet-encoding") {
      o.encoding = next(i);
      if (o.encoding != "delta" && o.encoding != "full" &&
          o.encoding != "both") {
        bad_value("--fleet-encoding", o.encoding.c_str());
      }
    } else if (arg == "--fleet-resync") {
      o.resync = parse_u64("--fleet-resync", next(i), 1, 1u << 20);
    } else if (arg == "--fleet-incremental") {
      o.incremental = true;
    } else if (arg == "--fleet-demand-weighted") {
      o.demand_weighted = true;
    } else if (arg == "--fleet-no-lending") {
      o.lending = false;
    } else if (arg == "--fleet-lending-heavy") {
      o.lending_heavy = true;
    } else if (arg == "--fleet-async-lending") {
      o.async_lending = true;
    } else if (arg == "--fleet-lend-cache") {
      o.lend_cache = parse_u64("--fleet-lend-cache", next(i), 0, 1u << 24);
    } else if (arg == "--fleet-lend-rtt-x") {
      o.lend_rtt_x = parse_f64("--fleet-lend-rtt-x", next(i), 0.01, 1000.0);
    } else if (arg == "--fleet-lend-loss") {
      o.lend_loss = parse_f64("--fleet-lend-loss", next(i), 0.0, 1.0);
    } else if (arg == "--fleet-lend-reorder") {
      o.lend_reorder = parse_f64("--fleet-lend-reorder", next(i), 0.0, 1.0);
    } else if (arg == "--fleet-lend-outage-from-s") {
      o.lend_outage_from_s =
          parse_f64("--fleet-lend-outage-from-s", next(i), 0.0, 1e6);
    } else if (arg == "--fleet-lend-outage-dur-s") {
      o.lend_outage_dur_s =
          parse_f64("--fleet-lend-outage-dur-s", next(i), 0.0, 1e6);
    } else if (arg == "--profile") {
      o.profile = true;
    } else if (arg == "--trace-sample") {
      o.trace_sample = parse_u64("--trace-sample", next(i), 1, 1u << 20);
    } else if (arg == "--trace-out") {
      o.trace_out = next(i);
    } else if (arg == "--metrics-out") {
      o.metrics_out = next(i);
    } else if (arg == "--audit-out") {
      o.audit_out = next(i);
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(stderr);
      std::exit(2);
    }
  }
  return o;
}

struct Cell {
  std::size_t nodes = 2;
  bool delta = false;
};

/// Applies the lending knobs shared by the measured grid and the observed
/// run. The async block only fires under --fleet-async-lending, so default
/// runs keep the historic config byte-for-byte.
void apply_lending(const Options& o, cluster::FleetExperimentConfig& cfg) {
  cfg.lending = o.lending;
  cfg.lending_demand_weighted = o.demand_weighted;
  cfg.lending_heavy = o.lending_heavy;
  if (o.async_lending) {
    cfg.lending_async.enabled = true;
    cfg.lending_async.cache_pages = o.lend_cache;
    cfg.lend_rtt_x = o.lend_rtt_x;
    cfg.lend_fault.loss_rate = o.lend_loss;
    cfg.lend_fault.reorder_rate = o.lend_reorder;
    if (o.lend_outage_from_s >= 0.0) {
      cfg.lend_fault.down_from = static_cast<SimTime>(
          o.lend_outage_from_s * static_cast<double>(kSecond));
      cfg.lend_fault.down_until = static_cast<SimTime>(
          (o.lend_outage_from_s + o.lend_outage_dur_s) *
          static_cast<double>(kSecond));
    }
  }
}

cluster::FleetRunResult run_cell(const Options& o, const Cell& cell,
                                 std::uint64_t seed) {
  cluster::FleetExperimentConfig cfg;
  cfg.nodes = cell.nodes;
  cfg.vms_per_node = o.vms;
  cfg.skew = o.skew;
  cfg.mix = o.mix;
  cfg.global_policy = o.policy;
  apply_lending(o, cfg);
  cfg.delta = cell.delta;
  cfg.resync_every = o.resync;
  cfg.mm_incremental = o.incremental;
  cfg.scale = o.scale;
  cfg.seed = seed;
  cfg.sim_threads = o.sim_threads;
  cfg.profile = o.profile;
  return cluster::run_fleet_scenario(cfg);
}

double per_interval(std::uint64_t bytes, std::uint64_t intervals) {
  return intervals == 0 ? 0.0
                        : static_cast<double>(bytes) /
                              static_cast<double>(intervals);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  const std::vector<std::size_t> node_counts =
      o.nodes != 0 ? std::vector<std::size_t>{o.nodes}
                   : std::vector<std::size_t>{2, 4, 8};
  std::vector<bool> encodings;
  if (o.encoding == "full" || o.encoding == "both") encodings.push_back(false);
  if (o.encoding == "delta" || o.encoding == "both") encodings.push_back(true);

  std::vector<Cell> cells;
  for (const std::size_t n : node_counts) {
    for (const bool d : encodings) cells.push_back(Cell{n, d});
  }

  std::printf("=== fleet scaling: %zu tenants/node, skew %g, mix %s, %s ===\n",
              o.vms, o.skew, workloads::to_string(o.mix), o.policy.c_str());
  std::printf("%zu cell(s) x %zu rep(s), scale %g, resync %llu, "
              "incremental %s, lending %s%s, sim-threads %zu\n\n",
              cells.size(), o.reps, o.scale,
              static_cast<unsigned long long>(o.resync),
              o.incremental ? "on" : "off", o.lending ? "on" : "off",
              o.demand_weighted ? " (demand-weighted)" : "", o.sim_threads);

  // Wall-clock and the decide-ns probe go to stdout only — the CSV must
  // stay byte-identical across --sim-threads and machine speeds.
  std::vector<cluster::FleetRunResult> runs(cells.size() * o.reps);
  std::vector<double> wall(runs.size());
  parallel_for_each(o.jobs, runs.size(), [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    runs[i] = run_cell(o, cells[i / o.reps], o.seed + (i % o.reps));
    wall[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  });

  std::printf("%-6s %-5s %14s %13s %13s %12s %10s %12s %9s\n", "nodes",
              "enc", "failed_puts", "node_B/intvl", "rack_B/intvl",
              "mm_samples", "makespan", "decide_ns/d", "wall");
  std::vector<double> mean_bpi(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    RunningStats failed, bpi, rbpi, makespan, wall_s, decide;
    std::uint64_t samples = 0;
    for (std::size_t rep = 0; rep < o.reps; ++rep) {
      const cluster::FleetRunResult& r = runs[c * o.reps + rep];
      failed.add(static_cast<double>(r.aggregate_failed_puts));
      bpi.add(per_interval(r.node_control_bytes, r.mm_samples));
      rbpi.add(per_interval(r.rack_control_bytes, r.gm_decisions));
      makespan.add(r.makespan_s);
      wall_s.add(wall[c * o.reps + rep]);
      if (r.mm_decides > 0) {
        decide.add(static_cast<double>(r.mm_decide_ns) /
                   static_cast<double>(r.mm_decides));
      }
      samples += r.mm_samples;
    }
    mean_bpi[c] = bpi.mean();
    std::printf("%-6zu %-5s %14.0f %13.1f %13.1f %12llu %9.1fs %12.0f %8.2fs\n",
                cells[c].nodes, cells[c].delta ? "delta" : "full",
                failed.mean(), bpi.mean(), rbpi.mean(),
                static_cast<unsigned long long>(samples / o.reps),
                makespan.mean(), decide.mean(), wall_s.mean());
  }

  if (o.profile) {
    // Engine self-profile (wall-clock — stdout and fleet_profile.csv only;
    // the outcome CSV above must stay byte-identical with --profile on).
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const cluster::FleetRunResult& r = runs[c * o.reps];  // rep 0
      if (r.profile.empty()) continue;
      std::printf("\n--- profile: %zu nodes, %s (rep 0) ---\n",
                  cells[c].nodes, cells[c].delta ? "delta" : "full");
      std::printf("%-6s %10s %10s %8s %8s %10s %9s %9s %7s\n", "shard",
                  "busy_ms", "wait_ms", "occ_mean", "occ_p95", "events",
                  "inj_out", "inj_in", "crit_w");
      // Busiest first; at 64 nodes the full table is noise, so cap at the
      // top 10 — the CSV keeps every shard.
      std::vector<const cluster::FleetRunResult::ShardProfileRow*> rows;
      rows.reserve(r.profile.size());
      for (const auto& row : r.profile) rows.push_back(&row);
      std::sort(rows.begin(), rows.end(),
                [](const auto* a, const auto* b) {
                  return a->busy_ms > b->busy_ms;
                });
      const std::size_t shown = std::min<std::size_t>(rows.size(), 10);
      for (std::size_t s = 0; s < shown; ++s) {
        const auto& row = *rows[s];
        std::printf("%-6s %10.2f %10.2f %8.2f %8.2f %10llu %9llu %9llu "
                    "%7llu\n",
                    row.label.c_str(), row.busy_ms, row.barrier_wait_ms,
                    row.occupancy_mean, row.occupancy_p95,
                    static_cast<unsigned long long>(row.events),
                    static_cast<unsigned long long>(row.injections_out),
                    static_cast<unsigned long long>(row.injections_in),
                    static_cast<unsigned long long>(row.critical_windows));
      }
      if (shown < rows.size()) {
        std::printf("  ... %zu more shards (see fleet_profile.csv)\n",
                    rows.size() - shown);
      }
      std::printf("bottleneck: %s | windows %llu, idle-skip %.1fs sim, "
                  "critical-path %.1fms, drain %.2fms, hook %.2fms\n",
                  r.bottleneck.c_str(),
                  static_cast<unsigned long long>(r.engine_windows),
                  r.engine_idle_skip_s, r.engine_window_wall_ms,
                  r.engine_drain_ms, r.engine_hook_ms);
    }
  }

  if (o.async_lending) {
    // Lending summary (all simulation-visible, so deterministic): one line
    // per cell so the smoke job can grep borrow_placements straight off
    // stdout as well as out of fleet_lending.csv.
    std::printf("\n%-6s %-5s %9s %9s %9s %8s %8s %8s %8s %9s %9s\n", "nodes",
                "enc", "borrows", "fab_reqs", "retries", "giveups", "c_hits",
                "c_miss", "c_inval", "put_rtt", "get_rtt");
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::uint64_t borrows = 0, reqs = 0, retries = 0, giveups = 0;
      std::uint64_t chits = 0, cmiss = 0, cinval = 0;
      RunningStats put_rtt, get_rtt;
      for (std::size_t rep = 0; rep < o.reps; ++rep) {
        const cluster::FleetRunResult& r = runs[c * o.reps + rep];
        borrows += r.borrow_placements;
        reqs += r.fabric_requests;
        retries += r.fabric_retries;
        giveups += r.fabric_give_ups;
        chits += r.cache_hits;
        cmiss += r.cache_misses;
        cinval += r.cache_invalidations;
        put_rtt.add(r.put_rtt_mean_us);
        get_rtt.add(r.get_rtt_mean_us);
      }
      std::printf(
          "%-6zu %-5s %9llu %9llu %9llu %8llu %8llu %8llu %8llu %8.1fu %8.1fu\n",
          cells[c].nodes, cells[c].delta ? "delta" : "full",
          static_cast<unsigned long long>(borrows),
          static_cast<unsigned long long>(reqs),
          static_cast<unsigned long long>(retries),
          static_cast<unsigned long long>(giveups),
          static_cast<unsigned long long>(chits),
          static_cast<unsigned long long>(cmiss),
          static_cast<unsigned long long>(cinval), put_rtt.mean(),
          get_rtt.mean());
    }
  }

  // Headline: the delta encoding's steady-state saving where both
  // encodings ran at the same geometry.
  for (std::size_t a = 0; a < cells.size(); ++a) {
    if (cells[a].delta) continue;
    for (std::size_t b = 0; b < cells.size(); ++b) {
      if (!cells[b].delta || cells[b].nodes != cells[a].nodes) continue;
      if (mean_bpi[b] > 0.0) {
        std::printf("\n%zu nodes: delta control-plane bytes/interval %.1f vs "
                    "full %.1f (%.1fx saving)\n",
                    cells[a].nodes, mean_bpi[b], mean_bpi[a],
                    mean_bpi[a] / mean_bpi[b]);
      }
    }
  }

  if (!o.csv_dir.empty()) {
    const std::string path = o.csv_dir + "/fig_fleet_scaling.csv";
    std::ofstream csv(path);
    // Columns 1-11 are encoding-independent (delta-vs-full md5 cross-check
    // cuts to them); column 2 is sim_threads (thread-count check cuts it
    // away); everything encoding-dependent rides at the end.
    csv << "nodes,sim_threads,vms_per_node,skew,mix,global_policy,"
           "incremental,rep,failed_puts,puts_total,makespan_s,"
           "encoding,puts_succ,node_control_bytes,rack_control_bytes,"
           "mm_samples,node_bytes_per_interval,stats_full_sends,"
           "targets_full_sends,rollups_suppressed,quota_sends_skipped,"
           "gm_clean_decides,mm_incremental_decides,borrow_placements,"
           "lending_failed_placements\n";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      for (std::size_t rep = 0; rep < o.reps; ++rep) {
        const cluster::FleetRunResult& r = runs[c * o.reps + rep];
        char line[640];
        std::snprintf(
            line, sizeof line,
            "%zu,%zu,%zu,%g,%s,%s,%d,%zu,%llu,%llu,%.6f,"
            "%s,%llu,%llu,%llu,%llu,%.3f,%llu,%llu,%llu,%llu,%llu,%llu,"
            "%llu,%llu\n",
            cells[c].nodes, o.sim_threads, o.vms, o.skew,
            workloads::to_string(o.mix), o.policy.c_str(),
            o.incremental ? 1 : 0, rep,
            static_cast<unsigned long long>(r.aggregate_failed_puts),
            static_cast<unsigned long long>(r.puts_total), r.makespan_s,
            cells[c].delta ? "delta" : "full",
            static_cast<unsigned long long>(r.puts_succ),
            static_cast<unsigned long long>(r.node_control_bytes),
            static_cast<unsigned long long>(r.rack_control_bytes),
            static_cast<unsigned long long>(r.mm_samples),
            per_interval(r.node_control_bytes, r.mm_samples),
            static_cast<unsigned long long>(r.stats_full_sends),
            static_cast<unsigned long long>(r.targets_full_sends),
            static_cast<unsigned long long>(r.rollups_suppressed),
            static_cast<unsigned long long>(r.quota_sends_skipped),
            static_cast<unsigned long long>(r.gm_clean_decides),
            static_cast<unsigned long long>(r.mm_incremental_decides),
            static_cast<unsigned long long>(r.borrow_placements),
            static_cast<unsigned long long>(r.lending_failed_placements));
        csv << line;
      }
    }
    std::printf("\nwrote %s\n", path.c_str());

    if (o.async_lending) {
      // Separate artifact so the md5-checked fig_fleet_scaling.csv layout
      // never changes on the default path. Deliberately no sim_threads
      // column and no wall-clock fields: the whole file md5-compares across
      // --sim-threads values (the CI lending smoke job does exactly that).
      const std::string lpath = o.csv_dir + "/fleet_lending.csv";
      std::ofstream lcsv(lpath);
      lcsv << "nodes,encoding,rep,borrow_placements,failed_placements,"
              "borrow_hits,borrow_misses,recalls,failed_replacements,"
              "fabric_requests,fabric_retries,fabric_timeouts,"
              "fabric_give_ups,fabric_congestion_drops,fabric_get_fallbacks,"
              "cache_hits,cache_misses,cache_invalidations,"
              "put_rtt_mean_us,get_rtt_mean_us,get_rtt_count\n";
      for (std::size_t c = 0; c < cells.size(); ++c) {
        for (std::size_t rep = 0; rep < o.reps; ++rep) {
          const cluster::FleetRunResult& r = runs[c * o.reps + rep];
          char line[512];
          std::snprintf(
              line, sizeof line,
              "%zu,%s,%zu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
              "%llu,%llu,%llu,%llu,%llu,%llu,%.3f,%.3f,%llu\n",
              cells[c].nodes, cells[c].delta ? "delta" : "full", rep,
              static_cast<unsigned long long>(r.borrow_placements),
              static_cast<unsigned long long>(r.lending_failed_placements),
              static_cast<unsigned long long>(r.borrow_hits),
              static_cast<unsigned long long>(r.borrow_misses),
              static_cast<unsigned long long>(r.lending_recalls),
              static_cast<unsigned long long>(r.lending_failed_replacements),
              static_cast<unsigned long long>(r.fabric_requests),
              static_cast<unsigned long long>(r.fabric_retries),
              static_cast<unsigned long long>(r.fabric_timeouts),
              static_cast<unsigned long long>(r.fabric_give_ups),
              static_cast<unsigned long long>(r.fabric_congestion_drops),
              static_cast<unsigned long long>(r.fabric_get_fallbacks),
              static_cast<unsigned long long>(r.cache_hits),
              static_cast<unsigned long long>(r.cache_misses),
              static_cast<unsigned long long>(r.cache_invalidations),
              r.put_rtt_mean_us, r.get_rtt_mean_us,
              static_cast<unsigned long long>(r.get_rtt_count));
          lcsv << line;
        }
      }
      std::printf("wrote %s\n", lpath.c_str());
    }

    if (o.profile) {
      // Separate artifact on purpose: everything in here is wall-clock, so
      // it must never ride in the md5-checked outcome CSV.
      const std::string ppath = o.csv_dir + "/fleet_profile.csv";
      std::ofstream pcsv(ppath);
      pcsv << "nodes,encoding,rep,shard,busy_ms,barrier_wait_ms,"
              "occupancy_mean,occupancy_p95,events,injections_out,"
              "injections_in,critical_windows,bottleneck,windows,"
              "idle_skip_s,window_wall_ms,drain_ms,hook_ms\n";
      for (std::size_t c = 0; c < cells.size(); ++c) {
        for (std::size_t rep = 0; rep < o.reps; ++rep) {
          const cluster::FleetRunResult& r = runs[c * o.reps + rep];
          for (const auto& row : r.profile) {
            char line[512];
            std::snprintf(
                line, sizeof line,
                "%zu,%s,%zu,%s,%.3f,%.3f,%.4f,%.4f,%llu,%llu,%llu,%llu,"
                "%s,%llu,%.3f,%.3f,%.3f,%.3f\n",
                cells[c].nodes, cells[c].delta ? "delta" : "full", rep,
                row.label.c_str(), row.busy_ms, row.barrier_wait_ms,
                row.occupancy_mean, row.occupancy_p95,
                static_cast<unsigned long long>(row.events),
                static_cast<unsigned long long>(row.injections_out),
                static_cast<unsigned long long>(row.injections_in),
                static_cast<unsigned long long>(row.critical_windows),
                r.bottleneck.c_str(),
                static_cast<unsigned long long>(r.engine_windows),
                r.engine_idle_skip_s, r.engine_window_wall_ms,
                r.engine_drain_ms, r.engine_hook_ms);
            pcsv << line;
          }
        }
      }
      std::printf("wrote %s\n", ppath.c_str());
    }
  }

  if (!o.trace_out.empty() || !o.metrics_out.empty() || !o.audit_out.empty()) {
    // One extra observed run at the first cell's geometry: the measured
    // grid above stays observability-free so its wall columns mean what
    // they say. The metrics export is what obs_inspect.py fleet-report
    // reads; delta encoding on so the delta-health telemetry is live.
    Cell cell = cells.front();
    for (const Cell& c : cells) {
      if (c.delta) { cell = c; break; }
    }
    cluster::FleetExperimentConfig cfg;
    cfg.nodes = cell.nodes;
    cfg.vms_per_node = o.vms;
    cfg.skew = o.skew;
    cfg.mix = o.mix;
    cfg.global_policy = o.policy;
    apply_lending(o, cfg);
    cfg.delta = cell.delta;
    cfg.resync_every = o.resync;
    cfg.mm_incremental = o.incremental;
    cfg.scale = o.scale;
    cfg.seed = o.seed;
    cfg.sim_threads = o.sim_threads;
    cfg.profile = o.profile;
    cfg.obs.trace_out = o.trace_out;
    cfg.obs.metrics_out = o.metrics_out;
    cfg.obs.audit_out = o.audit_out;
    cfg.obs.trace_sample_every = o.trace_sample;
    std::printf("\nobserved run: %zu nodes, %s encoding, trace-sample %llu\n",
                cfg.nodes, cfg.delta ? "delta" : "full",
                static_cast<unsigned long long>(o.trace_sample));
    cluster::run_fleet_scenario(cfg);
    if (!o.trace_out.empty())
      std::printf("  trace:   %s\n", o.trace_out.c_str());
    if (!o.metrics_out.empty())
      std::printf("  metrics: %s\n", o.metrics_out.c_str());
    if (!o.audit_out.empty())
      std::printf("  audit:   %s\n", o.audit_out.c_str());
  }
  return 0;
}
