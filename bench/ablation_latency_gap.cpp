// Ablation: the disk-vs-tmem latency gap. The whole value proposition of
// tmem is that a hypervisor page copy is much cheaper than a virtual-disk
// I/O; this bench sweeps the disk access latency to show where tmem's
// benefit (and the policies' leverage) comes from and where it vanishes.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  const core::ScenarioSpec spec = core::scenario1(opts.scale);

  std::printf("=== ablation: disk access latency (scenario 1) ===\n");
  std::printf("tmem put/get stays ~6us; default disk model is 150us/4KiB\n\n");
  std::printf("%-12s %14s %14s %12s\n", "disk (us)", "no-tmem (s)",
              "greedy (s)", "speedup");

  for (const double disk_us : {20.0, 75.0, 150.0, 600.0, 2400.0}) {
    core::NodeConfig cfg = core::scaled_node_defaults(opts.scale);
    cfg.disk.access_latency =
        static_cast<SimTime>(disk_us * static_cast<double>(kMicrosecond));
    RunningStats no_tmem_time, greedy_time;
    for (std::size_t rep = 0; rep < opts.repetitions; ++rep) {
      {
        auto node = core::build_node(spec, mm::PolicySpec::no_tmem(),
                                     opts.base_seed + rep, &cfg);
        node->run(spec.deadline);
        for (VmId id : node->vm_ids()) {
          no_tmem_time.add(to_seconds(node->runner(id).finish_time() -
                                      node->runner(id).start_time()));
        }
      }
      {
        auto node = core::build_node(spec, mm::PolicySpec::greedy(),
                                     opts.base_seed + rep, &cfg);
        node->run(spec.deadline);
        for (VmId id : node->vm_ids()) {
          greedy_time.add(to_seconds(node->runner(id).finish_time() -
                                     node->runner(id).start_time()));
        }
      }
    }
    std::printf("%-12.0f %14.2f %14.2f %11.2fx\n", disk_us,
                no_tmem_time.mean(), greedy_time.mean(),
                no_tmem_time.mean() / greedy_time.mean());
  }
  return 0;
}
