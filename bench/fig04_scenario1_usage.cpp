// Figure 4: tmem capacity held by each VM over time in Scenario 1, under
// (a) greedy and (b) smart-alloc with P = 0.75% — including the enforced
// target line for VM3 that the paper plots.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  bench::run_usage_figure(
      "fig04", "Tmem capacity per VM for Scenario 1", core::scenario1,
      {mm::PolicySpec::greedy(), mm::PolicySpec::smart(0.75)}, opts,
      /*include_targets=*/true);
  return 0;
}
