// Figure 5: running times for Scenario 2 (3x graph-analytics, VM3 staggered
// 30s) across policies, with the P values the paper evaluates there.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  bench::run_runtime_figure(
      "fig05", "Running times for Scenario 2", core::scenario2,
      {
          mm::PolicySpec::no_tmem(),
          mm::PolicySpec::greedy(),
          mm::PolicySpec::static_alloc(),
          mm::PolicySpec::reconf_static(),
          mm::PolicySpec::smart(2.0),
          mm::PolicySpec::smart(4.0),
          mm::PolicySpec::smart(6.0),
      },
      opts);
  return 0;
}
