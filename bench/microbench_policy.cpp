// Microbenchmarks of the Memory Manager policy computations: the per-second
// decision cost that would run in the privileged domain. Even the smart
// policy must be microseconds per interval — it is, by orders of magnitude.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "mm/greedy_policy.hpp"
#include "mm/history.hpp"
#include "mm/reconf_static_policy.hpp"
#include "mm/smart_policy.hpp"
#include "mm/static_policy.hpp"
#include "mm/swap_rate_policy.hpp"

namespace {

using namespace smartmem;

hyper::MemStats make_stats(std::uint32_t vms, Rng& rng) {
  hyper::MemStats stats;
  stats.total_tmem = 262144;
  stats.vm_count = vms;
  for (VmId id = 1; id <= vms; ++id) {
    hyper::VmMemStats v;
    v.vm_id = id;
    v.puts_total = rng.uniform(10000);
    v.puts_succ = v.puts_total - rng.uniform(v.puts_total + 1);
    v.tmem_used = rng.uniform(stats.total_tmem);
    v.mm_target = stats.total_tmem / vms;
    v.cumul_puts_failed = rng.uniform(1000);
    stats.vm.push_back(v);
  }
  return stats;
}

template <typename PolicyT, typename... Args>
void run_policy_bench(benchmark::State& state, Args&&... args) {
  PolicyT policy(std::forward<Args>(args)...);
  mm::StatsHistory history;
  mm::PolicyContext ctx;
  ctx.total_tmem = 262144;
  ctx.history = &history;
  Rng rng(1);
  const auto stats = make_stats(static_cast<std::uint32_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.compute(stats, ctx));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_GreedyPolicy(benchmark::State& state) {
  run_policy_bench<mm::GreedyPolicy>(state);
}
BENCHMARK(BM_GreedyPolicy)->Arg(3)->Arg(64);

void BM_StaticPolicy(benchmark::State& state) {
  run_policy_bench<mm::StaticPolicy>(state);
}
BENCHMARK(BM_StaticPolicy)->Arg(3)->Arg(64);

void BM_ReconfStaticPolicy(benchmark::State& state) {
  run_policy_bench<mm::ReconfStaticPolicy>(state);
}
BENCHMARK(BM_ReconfStaticPolicy)->Arg(3)->Arg(64);

void BM_SmartPolicy(benchmark::State& state) {
  run_policy_bench<mm::SmartPolicy>(state, mm::SmartPolicyConfig{0.75, 0});
}
BENCHMARK(BM_SmartPolicy)->Arg(3)->Arg(64);

void BM_SwapRatePolicy(benchmark::State& state) {
  run_policy_bench<mm::SwapRatePolicy>(state);
}
BENCHMARK(BM_SwapRatePolicy)->Arg(3)->Arg(64);

void BM_HistoryRecord(benchmark::State& state) {
  mm::StatsHistory history(120);
  Rng rng(2);
  const auto stats = make_stats(3, rng);
  for (auto _ : state) {
    history.record(stats);
  }
}
BENCHMARK(BM_HistoryRecord);

}  // namespace

BENCHMARK_MAIN();
