#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/strfmt.hpp"

namespace smartmem::bench {

Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      opts.scale = std::atof(next());
    } else if (arg == "--reps") {
      opts.repetitions = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--seed") {
      opts.base_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--csv") {
      opts.csv_dir = next();
    } else if (arg == "--full") {
      opts.scale = 1.0;
      opts.repetitions = 5;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "flags: --scale <f> --reps <n> --seed <n> --csv <dir> --full\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opts;
}

std::vector<core::ExperimentResult> run_runtime_figure(
    const std::string& figure_id, const std::string& title,
    core::ScenarioSpec (*scenario)(double),
    const std::vector<mm::PolicySpec>& policies, const Options& opts) {
  const core::ScenarioSpec spec = scenario(opts.scale);
  std::printf("=== %s: %s ===\n", figure_id.c_str(), title.c_str());
  std::printf("scenario: %s\n", spec.description.c_str());
  std::printf("scale %.4g (1.0 = paper geometry), %zu repetitions, seed %llu\n\n",
              opts.scale, opts.repetitions,
              static_cast<unsigned long long>(opts.base_seed));

  std::vector<core::ExperimentResult> results;
  for (const auto& policy : policies) {
    core::ExperimentConfig cfg;
    cfg.repetitions = opts.repetitions;
    cfg.base_seed = opts.base_seed;
    results.push_back(core::run_experiment(spec, policy, cfg));
    std::printf("  ran %s\n", policy.label().c_str());
  }
  std::printf("\n");
  core::print_runtime_table(std::cout, figure_id + " — " + title, results);
  std::printf("\n");
  core::print_improvements(std::cout, results, "no-tmem");
  core::print_improvements(std::cout, results, "greedy");
  if (!opts.csv_dir.empty()) {
    const std::string path = opts.csv_dir + "/" + figure_id + "_runtimes.csv";
    core::write_runtime_csv(path, results);
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("\n");
  return results;
}

void run_usage_figure(const std::string& figure_id, const std::string& title,
                      core::ScenarioSpec (*scenario)(double),
                      const std::vector<mm::PolicySpec>& panels,
                      const Options& opts, bool include_targets) {
  const core::ScenarioSpec spec = scenario(opts.scale);
  std::printf("=== %s: %s ===\n", figure_id.c_str(), title.c_str());
  std::printf("scenario: %s\nscale %.4g, seed %llu\n\n",
              spec.description.c_str(), opts.scale,
              static_cast<unsigned long long>(opts.base_seed));

  char panel = 'a';
  for (const auto& policy : panels) {
    const core::ScenarioResult run =
        core::run_scenario(spec, policy, opts.base_seed);
    core::print_usage_panel(
        std::cout,
        strfmt("%s(%c) %s", figure_id.c_str(), panel, policy.label().c_str()),
        run, include_targets);
    if (!opts.csv_dir.empty()) {
      const std::string path = strfmt("%s/%s_%c_usage.csv",
                                      opts.csv_dir.c_str(), figure_id.c_str(),
                                      panel);
      core::write_usage_csv(path, run);
      std::printf("wrote %s\n", path.c_str());
    }
    ++panel;
  }
}

}  // namespace smartmem::bench
