#include "bench_common.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/strfmt.hpp"
#include "common/thread_pool.hpp"

namespace smartmem::bench {

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "flags:\n"
               "  --scale <f>   linear memory scale (default 0.125; 1.0 = "
               "paper size)\n"
               "  --reps <n>    repetitions per policy (default 3; paper "
               "uses 5)\n"
               "  --seed <n>    base seed (default 1)\n"
               "  --jobs <n>    worker threads (default 1; 0 = all hardware "
               "threads)\n"
               "  --csv <dir>   write CSV files into <dir>\n"
               "  --full        shorthand for --scale 1.0 --reps 5\n"
               "  --comm-latency-x <f>  multiply control-plane hop latencies\n"
               "  --comm-loss <p>       per-hop message loss probability\n"
               "  --comm-queue <n>      bounded in-flight queue (0 = off)\n"
               "  --comm-policy <p>     drop-newest|drop-oldest|backpressure\n"
               "  --stale-mode <m>      smart-alloc staleness handling: "
               "off|skip|widen\n"
               "  --stale-threshold <f> sample age (intervals) counting as "
               "stale (default 1.5)\n"
               "  --adaptive-interval   MM-driven dynamic sampling interval\n"
               "  --compressed-bytes <n>    compressed-tier byte budget "
               "(0 = off)\n"
               "  --compress-min-ratio <f>  per-VM mean ratio lower bound "
               "(default 1.5)\n"
               "  --compress-max-ratio <f>  per-VM mean ratio upper bound "
               "(default 4.0)\n"
               "  --compressed-evict <m>    drop|demote (default demote)\n"
               "  --capacity-units <u>      pages|bytes control-plane units\n"
               "  --trace-out <file>    write a Perfetto trace from one extra "
               "observed run\n"
               "  --metrics-out <file>  write metrics snapshots (JSONL; .csv "
               "for CSV)\n"
               "  --audit-out <file>    write the policy decision audit log "
               "(JSONL)\n"
               "  --trace-cats <list>   trace categories "
               "(tmem,hyper,comm,mm,guest,workload,sim|all)\n");
}

bool comm_overridden(const Options& opts) {
  return opts.comm_latency_x != 1.0 || opts.comm_loss != 0.0 ||
         opts.comm_queue != 0 ||
         opts.comm_policy != comm::QueuePolicy::kDropNewest;
}

bool adaptive_overridden(const Options& opts) {
  return opts.stale_mode != mm::StaleMode::kOff || opts.adaptive_interval;
}

bool compression_overridden(const Options& opts) {
  return opts.compressed_bytes != 0 || opts.compress_min_ratio != 1.5 ||
         opts.compress_max_ratio != 4.0 || !opts.compressed_evict_demote ||
         opts.capacity_units != CapacityUnits::kPages;
}

void apply_compression_options(core::NodeConfig& cfg, const Options& opts) {
  cfg.compressed_pool_bytes = opts.compressed_bytes;
  cfg.compressibility.min_ratio = opts.compress_min_ratio;
  cfg.compressibility.max_ratio = opts.compress_max_ratio;
  cfg.compressed_evict_demote = opts.compressed_evict_demote;
  cfg.capacity_units = opts.capacity_units;
}

void apply_adaptive_options(core::NodeConfig& cfg, const Options& opts) {
  cfg.adaptive_interval.enabled = opts.adaptive_interval;
}

std::vector<mm::PolicySpec> apply_stale_options(
    std::vector<mm::PolicySpec> policies, const Options& opts) {
  if (opts.stale_mode == mm::StaleMode::kOff) return policies;
  for (auto& spec : policies) {
    if (spec.kind != mm::PolicyKind::kSmart) continue;
    spec.smart_config.stale_mode = opts.stale_mode;
    spec.smart_config.stale_threshold_intervals = opts.stale_threshold;
  }
  return policies;
}

bool obs_requested(const Options& opts) {
  return !opts.trace_out.empty() || !opts.metrics_out.empty() ||
         !opts.audit_out.empty();
}

void run_observed(const std::string& figure_id,
                  core::ScenarioSpec (*scenario)(double),
                  const std::vector<mm::PolicySpec>& policies,
                  const Options& opts) {
  if (!obs_requested(opts) || policies.empty()) return;
  const std::vector<mm::PolicySpec> specs =
      apply_stale_options(policies, opts);
  // Prefer a managed policy so the trace/audit carry MM decisions — and a
  // smart policy specifically when a stale mode was requested, so the
  // audit shows the alg4:stale-* verdicts the flag enables.
  const mm::PolicySpec* policy = &specs.front();
  for (const auto& p : specs) {
    if (p.needs_manager()) {
      policy = &p;
      break;
    }
  }
  if (opts.stale_mode != mm::StaleMode::kOff) {
    for (const auto& p : specs) {
      if (p.kind == mm::PolicyKind::kSmart) {
        policy = &p;
        break;
      }
    }
  }
  core::NodeConfig cfg = core::scaled_node_defaults(opts.scale);
  if (comm_overridden(opts)) apply_comm_options(cfg, opts);
  if (adaptive_overridden(opts)) apply_adaptive_options(cfg, opts);
  if (compression_overridden(opts)) apply_compression_options(cfg, opts);
  cfg.obs.trace_out = opts.trace_out;
  cfg.obs.metrics_out = opts.metrics_out;
  cfg.obs.audit_out = opts.audit_out;
  cfg.obs.trace_categories = opts.trace_categories;

  const core::ScenarioSpec spec = scenario(opts.scale);
  std::printf("observability run (%s, %s, seed %llu)...\n", figure_id.c_str(),
              policy->label().c_str(),
              static_cast<unsigned long long>(opts.base_seed));
  core::run_scenario(spec, *policy, opts.base_seed, &cfg);
  if (!opts.trace_out.empty()) {
    std::printf("wrote %s\n", opts.trace_out.c_str());
  }
  if (!opts.metrics_out.empty()) {
    std::printf("wrote %s\n", opts.metrics_out.c_str());
  }
  if (!opts.audit_out.empty()) {
    std::printf("wrote %s\n", opts.audit_out.c_str());
  }
}

void apply_comm_options(core::NodeConfig& cfg, const Options& opts) {
  auto apply = [&opts](comm::ChannelConfig& ch) {
    auto stretch = [&opts](SimTime t) {
      return static_cast<SimTime>(static_cast<double>(t) *
                                  opts.comm_latency_x);
    };
    ch.latency.fixed = stretch(ch.latency.fixed);
    ch.latency.lo = stretch(ch.latency.lo);
    ch.latency.hi = stretch(ch.latency.hi);
    ch.faults.loss_rate = opts.comm_loss;
    ch.queue_capacity = opts.comm_queue;
    ch.queue_policy = opts.comm_policy;
  };
  apply(cfg.comm.uplink);
  apply(cfg.comm.downlink);
}

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  print_usage(stderr);
  std::exit(2);
}

double parse_double(const std::string& flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') {
    usage_error("malformed value '" + std::string(text) + "' for " + flag);
  }
  return v;
}

std::uint64_t parse_u64(const std::string& flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || text[0] == '-') {
    usage_error("malformed value '" + std::string(text) + "' for " + flag);
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

Options parse_options(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--scale") {
      opts.scale = parse_double(arg, next());
    } else if (arg == "--reps") {
      opts.repetitions = static_cast<std::size_t>(parse_u64(arg, next()));
    } else if (arg == "--seed") {
      opts.base_seed = parse_u64(arg, next());
    } else if (arg == "--jobs") {
      opts.jobs = static_cast<std::size_t>(parse_u64(arg, next()));
    } else if (arg == "--csv") {
      opts.csv_dir = next();
    } else if (arg == "--comm-latency-x") {
      opts.comm_latency_x = parse_double(arg, next());
      if (opts.comm_latency_x <= 0) usage_error("--comm-latency-x must be > 0");
    } else if (arg == "--comm-loss") {
      opts.comm_loss = parse_double(arg, next());
      if (opts.comm_loss < 0 || opts.comm_loss >= 1.0) {
        usage_error("--comm-loss must be in [0, 1)");
      }
    } else if (arg == "--comm-queue") {
      opts.comm_queue = static_cast<std::size_t>(parse_u64(arg, next()));
    } else if (arg == "--comm-policy") {
      if (!comm::parse_queue_policy(next(), opts.comm_policy)) {
        usage_error("--comm-policy must be drop-newest, drop-oldest or "
                    "backpressure");
      }
    } else if (arg == "--stale-mode") {
      if (!mm::parse_stale_mode(next(), opts.stale_mode)) {
        usage_error("--stale-mode must be off, skip or widen");
      }
    } else if (arg == "--stale-threshold") {
      opts.stale_threshold = parse_double(arg, next());
      if (opts.stale_threshold <= 0) {
        usage_error("--stale-threshold must be > 0");
      }
    } else if (arg == "--adaptive-interval") {
      opts.adaptive_interval = true;
    } else if (arg == "--compressed-bytes") {
      opts.compressed_bytes = parse_u64(arg, next());
    } else if (arg == "--compress-min-ratio") {
      opts.compress_min_ratio = parse_double(arg, next());
      if (opts.compress_min_ratio < 1.0) {
        usage_error("--compress-min-ratio must be >= 1");
      }
    } else if (arg == "--compress-max-ratio") {
      opts.compress_max_ratio = parse_double(arg, next());
      if (opts.compress_max_ratio < 1.0) {
        usage_error("--compress-max-ratio must be >= 1");
      }
    } else if (arg == "--compressed-evict") {
      const std::string mode = next();
      if (mode == "drop") {
        opts.compressed_evict_demote = false;
      } else if (mode == "demote") {
        opts.compressed_evict_demote = true;
      } else {
        usage_error("--compressed-evict must be drop or demote");
      }
    } else if (arg == "--capacity-units") {
      const std::string units = next();
      if (units == "pages") {
        opts.capacity_units = CapacityUnits::kPages;
      } else if (units == "bytes") {
        opts.capacity_units = CapacityUnits::kBytes;
      } else {
        usage_error("--capacity-units must be pages or bytes");
      }
    } else if (arg == "--trace-out") {
      opts.trace_out = next();
    } else if (arg == "--metrics-out") {
      opts.metrics_out = next();
    } else if (arg == "--audit-out") {
      opts.audit_out = next();
    } else if (arg == "--trace-cats") {
      if (!obs::parse_categories(next(), opts.trace_categories)) {
        usage_error(
            "--trace-cats must be a comma-separated subset of "
            "tmem,hyper,comm,mm,guest,workload,sim (or 'all')");
      }
    } else if (arg == "--full") {
      opts.scale = 1.0;
      opts.repetitions = 5;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      std::exit(0);
    } else {
      usage_error("unknown flag " + arg);
    }
  }
  return opts;
}

std::vector<core::ExperimentResult> run_runtime_figure(
    const std::string& figure_id, const std::string& title,
    core::ScenarioSpec (*scenario)(double),
    const std::vector<mm::PolicySpec>& policies, const Options& opts) {
  const core::ScenarioSpec spec = scenario(opts.scale);
  const std::size_t jobs = ThreadPool::resolve_jobs(opts.jobs);
  std::printf("=== %s: %s ===\n", figure_id.c_str(), title.c_str());
  std::printf("scenario: %s\n", spec.description.c_str());
  std::printf(
      "scale %.4g (1.0 = paper geometry), %zu repetitions, seed %llu, "
      "%zu job%s\n\n",
      opts.scale, opts.repetitions,
      static_cast<unsigned long long>(opts.base_seed), jobs,
      jobs == 1 ? "" : "s");

  core::ExperimentConfig cfg;
  cfg.repetitions = opts.repetitions;
  cfg.base_seed = opts.base_seed;
  cfg.jobs = opts.jobs;
  // --comm-*/--stale-*/--adaptive-* flags reshape the control plane; at
  // their defaults no override is installed and the policy specs pass
  // through untouched, keeping the default run byte-identical.
  const std::vector<mm::PolicySpec> specs =
      apply_stale_options(policies, opts);
  core::NodeConfig comm_cfg;
  if (comm_overridden(opts) || adaptive_overridden(opts) ||
      compression_overridden(opts)) {
    comm_cfg = core::scaled_node_defaults(opts.scale);
    apply_comm_options(comm_cfg, opts);
    apply_adaptive_options(comm_cfg, opts);
    apply_compression_options(comm_cfg, opts);
    cfg.overrides = &comm_cfg;
    if (comm_overridden(opts)) {
      std::printf("comm: latency x%g, loss %g, queue %zu (%s)\n",
                  opts.comm_latency_x, opts.comm_loss, opts.comm_queue,
                  comm::to_string(opts.comm_policy));
    }
    if (adaptive_overridden(opts)) {
      std::printf("adaptive: stale-mode %s (threshold %g), "
                  "adaptive-interval %s\n",
                  mm::to_string(opts.stale_mode), opts.stale_threshold,
                  opts.adaptive_interval ? "on" : "off");
    }
    if (compression_overridden(opts)) {
      std::printf("compressed tier: %llu bytes, ratios [%g, %g], evict %s, "
                  "units %s\n",
                  static_cast<unsigned long long>(opts.compressed_bytes),
                  opts.compress_min_ratio, opts.compress_max_ratio,
                  opts.compressed_evict_demote ? "demote" : "drop",
                  opts.capacity_units == CapacityUnits::kBytes ? "bytes"
                                                               : "pages");
    }
    std::printf("\n");
  }
  // The whole policy x rep grid runs on one pool; results come back in
  // `specs` order, and all printing/CSV writing happens after this
  // barrier on the main thread.
  std::vector<core::ExperimentResult> results =
      core::run_experiments(spec, specs, cfg);
  for (const auto& policy : specs) {
    std::printf("  ran %s\n", policy.label().c_str());
  }
  std::printf("\n");
  core::print_runtime_table(std::cout, figure_id + " — " + title, results);
  std::printf("\n");
  core::print_improvements(std::cout, results, "no-tmem");
  core::print_improvements(std::cout, results, "greedy");
  if (!opts.csv_dir.empty()) {
    const std::string path = opts.csv_dir + "/" + figure_id + "_runtimes.csv";
    core::write_runtime_csv(path, results);
    std::printf("wrote %s\n", path.c_str());
  }
  // The measured grid above always runs with observability off; the
  // requested trace/metrics/audit files come from one extra dedicated run.
  run_observed(figure_id, scenario, policies, opts);
  std::printf("\n");
  return results;
}

void run_usage_figure(const std::string& figure_id, const std::string& title,
                      core::ScenarioSpec (*scenario)(double),
                      const std::vector<mm::PolicySpec>& panels,
                      const Options& opts, bool include_targets) {
  const core::ScenarioSpec spec = scenario(opts.scale);
  std::printf("=== %s: %s ===\n", figure_id.c_str(), title.c_str());
  std::printf("scenario: %s\nscale %.4g, seed %llu\n\n",
              spec.description.c_str(), opts.scale,
              static_cast<unsigned long long>(opts.base_seed));

  core::NodeConfig comm_cfg;
  const core::NodeConfig* overrides = nullptr;
  const std::vector<mm::PolicySpec> specs = apply_stale_options(panels, opts);
  if (comm_overridden(opts) || adaptive_overridden(opts) ||
      compression_overridden(opts)) {
    comm_cfg = core::scaled_node_defaults(opts.scale);
    apply_comm_options(comm_cfg, opts);
    apply_adaptive_options(comm_cfg, opts);
    apply_compression_options(comm_cfg, opts);
    overrides = &comm_cfg;
    if (comm_overridden(opts)) {
      std::printf("comm: latency x%g, loss %g, queue %zu (%s)\n\n",
                  opts.comm_latency_x, opts.comm_loss, opts.comm_queue,
                  comm::to_string(opts.comm_policy));
    }
  }

  // One seeded run per panel, fanned out over the pool; panels print in
  // order after the barrier.
  std::vector<core::ScenarioResult> runs(specs.size());
  parallel_for_each(opts.jobs, specs.size(), [&](std::size_t p) {
    runs[p] = core::run_scenario(spec, specs[p], opts.base_seed, overrides);
  });

  char panel = 'a';
  for (std::size_t p = 0; p < specs.size(); ++p) {
    const core::ScenarioResult& run = runs[p];
    core::print_usage_panel(
        std::cout,
        strfmt("%s(%c) %s", figure_id.c_str(), panel,
               specs[p].label().c_str()),
        run, include_targets);
    if (!opts.csv_dir.empty()) {
      const std::string path = strfmt("%s/%s_%c_usage.csv",
                                      opts.csv_dir.c_str(), figure_id.c_str(),
                                      panel);
      core::write_usage_csv(path, run);
      std::printf("wrote %s\n", path.c_str());
    }
    ++panel;
  }
  run_observed(figure_id, scenario, panels, opts);
}

}  // namespace smartmem::bench
