// Shared driver for the figure-reproduction benches.
//
// Every bench binary regenerates one table/figure of the paper: it runs a
// scenario under a set of policies, prints the running-time table or the
// tmem-usage chart, and (with --csv) dumps raw data for plotting.
//
// Flags (all optional):
//   --scale <f>   linear memory scale (default 0.125; 1.0 = paper size)
//   --reps <n>    repetitions per policy (default 3; paper uses 5)
//   --seed <n>    base seed (default 1)
//   --jobs <n>    worker threads for the policy x rep grid (default 1;
//                 0 = every hardware thread). Output is bit-identical for
//                 every jobs value.
//   --csv <dir>   write CSV files into <dir>
//   --full        shorthand for --scale 1.0 --reps 5
//
// Control-plane (src/comm) knobs, for staleness/fault what-ifs on any bench:
//   --comm-latency-x <f>   multiply both hop latencies by <f> (default 1)
//   --comm-loss <p>        per-hop message loss probability (default 0)
//   --comm-queue <n>       bounded in-flight queue per hop (default 0 = off)
//   --comm-policy <p>      drop-newest | drop-oldest | backpressure
//
// Adaptive control plane (off by default — the paper-faithful loop):
//   --stale-mode <m>       smart-alloc staleness handling: off|skip|widen
//   --stale-threshold <f>  sample age (in intervals) counting as stale
//   --adaptive-interval    let the MM stretch/shrink the sampling interval
//
// Compressed tier (src/tier, off by default — byte-identical when off):
//   --compressed-bytes <n>     byte budget of the zswap-style pool (0 = off)
//   --compress-min-ratio <f>   lower bound of per-VM mean ratios
//   --compress-max-ratio <f>   upper bound of per-VM mean ratios
//   --compressed-evict <m>     drop | demote (default demote)
//   --capacity-units <u>       pages | bytes control-plane units
//
// Observability (src/obs) outputs. The measured figure grid always runs
// with observability off (byte-identical output); when any --*-out flag is
// given, ONE extra dedicated run executes after the grid with the requested
// pillars enabled and writes the files:
//   --trace-out <file>     Chrome trace-event JSON (Perfetto-loadable)
//   --metrics-out <file>   metrics snapshots, JSONL (or CSV via .csv suffix)
//   --audit-out <file>     policy decision audit log, JSONL
//   --trace-cats <list>    comma-separated trace categories (default all:
//                          tmem,hyper,comm,mm,guest,workload,sim)
//
// Unknown flags and malformed values are fatal (exit 2 with a usage
// message): a typo like `--rep 5` must not silently run the default config.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

namespace smartmem::bench {

struct Options {
  double scale = 0.125;
  std::size_t repetitions = 3;
  std::uint64_t base_seed = 1;
  std::size_t jobs = 1;  // 0 = hardware_concurrency
  std::string csv_dir;
  // --comm-* overrides; at these defaults the node config is left untouched,
  // keeping every figure bench byte-identical to the pre-comm output.
  double comm_latency_x = 1.0;
  double comm_loss = 0.0;
  std::size_t comm_queue = 0;
  comm::QueuePolicy comm_policy = comm::QueuePolicy::kDropNewest;
  // --stale-mode / --stale-threshold / --adaptive-interval; at these
  // defaults neither the policy configs nor the node config are touched.
  mm::StaleMode stale_mode = mm::StaleMode::kOff;
  double stale_threshold = 1.5;
  bool adaptive_interval = false;
  // Compressed-tier (src/tier) knobs; at these defaults the node config is
  // left untouched, keeping every figure byte-identical to the pre-tier
  // output. --compressed-bytes enables the pool.
  std::uint64_t compressed_bytes = 0;
  double compress_min_ratio = 1.5;
  double compress_max_ratio = 4.0;
  bool compressed_evict_demote = true;
  CapacityUnits capacity_units = CapacityUnits::kPages;
  // --trace-out / --metrics-out / --audit-out / --trace-cats; empty paths
  // leave observability off entirely.
  std::string trace_out;
  std::string metrics_out;
  std::string audit_out;
  std::uint32_t trace_categories = obs::kCatAll;
};

/// True when any --comm-* flag deviates from its default.
bool comm_overridden(const Options& opts);

/// Applies the --comm-* flags onto cfg.comm (both hops).
void apply_comm_options(core::NodeConfig& cfg, const Options& opts);

/// True when --stale-mode or --adaptive-interval deviates from its default.
bool adaptive_overridden(const Options& opts);

/// True when any compressed-tier flag deviates from its default.
bool compression_overridden(const Options& opts);

/// Applies the --compressed-*/--capacity-units flags onto cfg.
void apply_compression_options(core::NodeConfig& cfg, const Options& opts);

/// Applies --adaptive-interval onto cfg (bounds already scaled by
/// scaled_node_defaults).
void apply_adaptive_options(core::NodeConfig& cfg, const Options& opts);

/// Returns `policies` with --stale-mode/--stale-threshold applied to every
/// smart-policy spec (other policies pass through untouched).
std::vector<mm::PolicySpec> apply_stale_options(
    std::vector<mm::PolicySpec> policies, const Options& opts);

/// True when any --*-out observability flag was given.
bool obs_requested(const Options& opts);

/// Runs the one dedicated observed run (observability pillars per `opts`)
/// and reports the written files. Uses the first policy that runs a Memory
/// Manager (falling back to the first policy) so the trace and audit carry
/// mm activity. No-op when !obs_requested(opts).
void run_observed(const std::string& figure_id,
                  core::ScenarioSpec (*scenario)(double),
                  const std::vector<mm::PolicySpec>& policies,
                  const Options& opts);

Options parse_options(int argc, char** argv);

/// Prints the flag reference to `out` (shared by --help and parse errors).
void print_usage(std::FILE* out);

/// Runs `scenario(scale)` under every policy, prints the Figure-style
/// running-time table plus the paper's improvement lines, and returns the
/// per-policy results.
std::vector<core::ExperimentResult> run_runtime_figure(
    const std::string& figure_id, const std::string& title,
    core::ScenarioSpec (*scenario)(double),
    const std::vector<mm::PolicySpec>& policies, const Options& opts);

/// Runs one seeded run per policy panel and prints the tmem-usage charts
/// (the Figure 4/6/8/10 format).
void run_usage_figure(const std::string& figure_id, const std::string& title,
                      core::ScenarioSpec (*scenario)(double),
                      const std::vector<mm::PolicySpec>& panels,
                      const Options& opts, bool include_targets = false);

}  // namespace smartmem::bench
