// Ablation: the asynchronous lending fabric (DESIGN §15).
//
// Fixed lending-heavy fleet geometry (node 0's tenants spill far past RAM,
// the cold nodes' tenants fit outright, so the borrow path carries real
// traffic), swept over the three axes the fabric adds to the model:
//
//   wire speed   --  lend-hop RTT multiplier (1x = the RDMA-class
//                    40us/direction default, 4x = congested/oversubscribed)
//   fault profile --  none | loss (5% each way) | flaky (5% loss + 10%
//                    reorder) | outage (0.5s blackout mid-run)
//   borrower cache -- off (0 pages) vs on (--cache pages, default 64)
//
// plus one synchronous-plane baseline row (async off: the historic constant
// remote cost, no faults possible) and a demand-weighted re-verdict pair:
// the credit-split policy judged again under the async fabric, where
// failed placements now include transport give-ups, not just capacity
// misses.
//
// The headline numbers:
//   - cache effect: mean borrowed-get RTT with the cache on vs off at the
//     default wire speed, fault-free (cache hits are local, costing 0us of
//     fabric time).
//   - demand-weighted verdict: aggregate failed puts, even split vs
//     demand-weighted, same async cell.
//
// CSV contract: ablation_lending.csv holds simulation-visible columns only
// and deliberately no sim_threads column — runs at different --sim-threads
// md5 to the same file (CI checks exactly that).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/fleet.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace {

using namespace smartmem;

struct Options {
  double scale = 0.0625;
  std::size_t reps = 1;
  std::uint64_t seed = 1;
  std::size_t jobs = 1;
  std::size_t sim_threads = 1;
  std::string csv_dir;
  std::size_t nodes = 4;
  std::size_t vms = 4;
  std::uint64_t cache = 64;
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "ablation_lending [--scale f] [--reps n] [--seed n] [--jobs n]\n"
               "  [--sim-threads n] [--csv dir] [--nodes n] [--vms n]\n"
               "  [--cache pages]\n");
}

[[noreturn]] void bad_value(const char* flag, const char* value) {
  std::fprintf(stderr, "bad value for %s: '%s'\n", flag, value);
  usage(stderr);
  std::exit(2);
}

std::uint64_t parse_u64(const char* flag, const char* value, std::uint64_t min,
                        std::uint64_t max) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (errno != 0 || end == value || *end != '\0' || v < min || v > max) {
    bad_value(flag, value);
  }
  return static_cast<std::uint64_t>(v);
}

double parse_f64(const char* flag, const char* value, double min, double max) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (errno != 0 || end == value || *end != '\0' || !(v >= min) || !(v <= max)) {
    bad_value(flag, value);
  }
  return v;
}

Options parse(int argc, char** argv) {
  Options o;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      usage(stderr);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale") {
      o.scale = parse_f64("--scale", next(i), 1e-3, 16.0);
    } else if (arg == "--reps") {
      o.reps = parse_u64("--reps", next(i), 1, 1000);
    } else if (arg == "--seed") {
      o.seed = parse_u64("--seed", next(i), 0, UINT64_MAX);
    } else if (arg == "--jobs") {
      o.jobs = parse_u64("--jobs", next(i), 0, 4096);
    } else if (arg == "--sim-threads") {
      o.sim_threads = parse_u64("--sim-threads", next(i), 0, 4096);
    } else if (arg == "--csv") {
      o.csv_dir = next(i);
    } else if (arg == "--nodes") {
      o.nodes = parse_u64("--nodes", next(i), 2, 256);
    } else if (arg == "--vms") {
      o.vms = parse_u64("--vms", next(i), 1, 256);
    } else if (arg == "--cache") {
      o.cache = parse_u64("--cache", next(i), 0, 1u << 24);
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(stderr);
      std::exit(2);
    }
  }
  return o;
}

struct Cell {
  std::string label;  // row name in the CSV and the stdout table
  bool async = true;
  double rtt_x = 1.0;
  std::string fault = "none";  // none | loss | flaky | outage
  std::uint64_t cache = 0;
  bool demand_weighted = false;
};

comm::FaultSpec fault_for(const std::string& name) {
  comm::FaultSpec f;
  if (name == "loss") {
    f.loss_rate = 0.05;
  } else if (name == "flaky") {
    f.loss_rate = 0.05;
    f.reorder_rate = 0.10;
  } else if (name == "outage") {
    f.down_from = 2 * kSecond;
    f.down_until = 2 * kSecond + kSecond / 2;
  }
  return f;
}

cluster::FleetRunResult run_cell(const Options& o, const Cell& cell,
                                 std::uint64_t seed) {
  cluster::FleetExperimentConfig cfg;
  cfg.nodes = o.nodes;
  cfg.vms_per_node = o.vms;
  cfg.lending_heavy = true;
  cfg.lending_demand_weighted = cell.demand_weighted;
  cfg.delta = true;
  cfg.scale = o.scale;
  cfg.seed = seed;
  cfg.sim_threads = o.sim_threads;
  if (cell.async) {
    cfg.lending_async.enabled = true;
    cfg.lending_async.cache_pages = cell.cache;
    cfg.lend_rtt_x = cell.rtt_x;
    cfg.lend_fault = fault_for(cell.fault);
  }
  return cluster::run_fleet_scenario(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  std::vector<Cell> cells;
  cells.push_back({"sync-baseline", false, 1.0, "none", 0, false});
  for (const double rtt_x : {1.0, 4.0}) {
    for (const char* fault : {"none", "loss", "flaky", "outage"}) {
      for (const std::uint64_t cache : {std::uint64_t{0}, o.cache}) {
        char label[64];
        std::snprintf(label, sizeof label, "rtt%gx/%s/cache%llu", rtt_x,
                      fault, static_cast<unsigned long long>(cache));
        cells.push_back({label, true, rtt_x, fault, cache, false});
      }
    }
  }
  // Demand-weighted re-verdict pair: same async cell, credit split flipped.
  cells.push_back({"dw-even", true, 1.0, "none", o.cache, false});
  cells.push_back({"dw-weighted", true, 1.0, "none", o.cache, true});

  std::printf("=== ablation: async lending fabric (%zu nodes x %zu tenants, "
              "lending-heavy, scale %g, cache %llu pages) ===\n",
              o.nodes, o.vms, o.scale,
              static_cast<unsigned long long>(o.cache));
  std::printf("%zu cell(s) x %zu rep(s), sim-threads %zu\n\n", cells.size(),
              o.reps, o.sim_threads);

  std::vector<cluster::FleetRunResult> runs(cells.size() * o.reps);
  parallel_for_each(o.jobs, runs.size(), [&](std::size_t i) {
    runs[i] = run_cell(o, cells[i / o.reps], o.seed + (i % o.reps));
  });

  std::printf("%-22s %11s %8s %8s %8s %8s %8s %8s %9s %9s\n", "cell",
              "failed_puts", "borrows", "retries", "giveups", "fallbk",
              "c_hits", "c_miss", "put_rtt", "get_rtt");
  struct Agg {
    RunningStats failed, put_rtt, get_rtt;
    std::uint64_t borrows = 0, retries = 0, giveups = 0, fallbacks = 0;
    std::uint64_t chits = 0, cmiss = 0, failed_placements = 0;
  };
  std::vector<Agg> agg(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t rep = 0; rep < o.reps; ++rep) {
      const cluster::FleetRunResult& r = runs[c * o.reps + rep];
      agg[c].failed.add(static_cast<double>(r.aggregate_failed_puts));
      agg[c].put_rtt.add(r.put_rtt_mean_us);
      agg[c].get_rtt.add(r.get_rtt_mean_us);
      agg[c].borrows += r.borrow_placements;
      agg[c].retries += r.fabric_retries;
      agg[c].giveups += r.fabric_give_ups;
      agg[c].fallbacks += r.fabric_get_fallbacks;
      agg[c].chits += r.cache_hits;
      agg[c].cmiss += r.cache_misses;
      agg[c].failed_placements += r.lending_failed_placements;
    }
    std::printf("%-22s %11.0f %8llu %8llu %8llu %8llu %8llu %8llu %8.1fu "
                "%8.1fu\n",
                cells[c].label.c_str(), agg[c].failed.mean(),
                static_cast<unsigned long long>(agg[c].borrows),
                static_cast<unsigned long long>(agg[c].retries),
                static_cast<unsigned long long>(agg[c].giveups),
                static_cast<unsigned long long>(agg[c].fallbacks),
                static_cast<unsigned long long>(agg[c].chits),
                static_cast<unsigned long long>(agg[c].cmiss),
                agg[c].put_rtt.mean(), agg[c].get_rtt.mean());
  }

  // Headline 1: the borrower cache's effect on borrowed-get latency at the
  // default wire speed, fault-free.
  const Cell* on = nullptr;
  const Cell* off = nullptr;
  std::size_t on_i = 0, off_i = 0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (!cells[c].async || cells[c].rtt_x != 1.0 ||
        cells[c].fault != "none" || cells[c].demand_weighted) {
      continue;
    }
    if (cells[c].cache == 0 && off == nullptr) { off = &cells[c]; off_i = c; }
    if (cells[c].cache == o.cache && o.cache > 0 && on == nullptr) {
      on = &cells[c];
      on_i = c;
    }
  }
  if (on != nullptr && off != nullptr && agg[on_i].get_rtt.mean() > 0.0) {
    std::printf("\ncache effect (rtt 1x, fault-free): borrowed-get mean "
                "%.1fus with cache vs %.1fus without (%.1f%% cut, hit rate "
                "%.1f%%)\n",
                agg[on_i].get_rtt.mean(), agg[off_i].get_rtt.mean(),
                100.0 * (1.0 - agg[on_i].get_rtt.mean() /
                                   agg[off_i].get_rtt.mean()),
                100.0 * static_cast<double>(agg[on_i].chits) /
                    static_cast<double>(agg[on_i].chits + agg[on_i].cmiss));
  }

  // Headline 2: the demand-weighted credit split judged again under the
  // async fabric.
  const std::size_t even_i = cells.size() - 2;
  const std::size_t dw_i = cells.size() - 1;
  std::printf("demand-weighted re-verdict (async fabric): credit-starved "
              "placements %llu weighted vs %llu even split; aggregate "
              "failed puts %.0f vs %.0f; borrows %llu vs %llu\n",
              static_cast<unsigned long long>(agg[dw_i].failed_placements),
              static_cast<unsigned long long>(agg[even_i].failed_placements),
              agg[dw_i].failed.mean(), agg[even_i].failed.mean(),
              static_cast<unsigned long long>(agg[dw_i].borrows),
              static_cast<unsigned long long>(agg[even_i].borrows));

  if (!o.csv_dir.empty()) {
    const std::string path = o.csv_dir + "/ablation_lending.csv";
    std::ofstream csv(path);
    csv << "cell,async,rtt_x,fault,cache_pages,demand_weighted,rep,"
           "failed_puts,puts_total,makespan_s,borrow_placements,"
           "failed_placements,failed_replacements,fabric_requests,"
           "fabric_retries,fabric_timeouts,fabric_give_ups,"
           "fabric_get_fallbacks,cache_hits,cache_misses,"
           "cache_invalidations,put_rtt_mean_us,get_rtt_mean_us,"
           "get_rtt_count\n";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      for (std::size_t rep = 0; rep < o.reps; ++rep) {
        const cluster::FleetRunResult& r = runs[c * o.reps + rep];
        char line[512];
        std::snprintf(
            line, sizeof line,
            "%s,%d,%g,%s,%llu,%d,%zu,%llu,%llu,%.6f,%llu,%llu,%llu,%llu,"
            "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.3f,%.3f,%llu\n",
            cells[c].label.c_str(), cells[c].async ? 1 : 0, cells[c].rtt_x,
            cells[c].fault.c_str(),
            static_cast<unsigned long long>(cells[c].cache),
            cells[c].demand_weighted ? 1 : 0, rep,
            static_cast<unsigned long long>(r.aggregate_failed_puts),
            static_cast<unsigned long long>(r.puts_total), r.makespan_s,
            static_cast<unsigned long long>(r.borrow_placements),
            static_cast<unsigned long long>(r.lending_failed_placements),
            static_cast<unsigned long long>(r.lending_failed_replacements),
            static_cast<unsigned long long>(r.fabric_requests),
            static_cast<unsigned long long>(r.fabric_retries),
            static_cast<unsigned long long>(r.fabric_timeouts),
            static_cast<unsigned long long>(r.fabric_give_ups),
            static_cast<unsigned long long>(r.fabric_get_fallbacks),
            static_cast<unsigned long long>(r.cache_hits),
            static_cast<unsigned long long>(r.cache_misses),
            static_cast<unsigned long long>(r.cache_invalidations),
            r.put_rtt_mean_us, r.get_rtt_mean_us,
            static_cast<unsigned long long>(r.get_rtt_count));
        csv << line;
      }
    }
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}
