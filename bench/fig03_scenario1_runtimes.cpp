// Figure 3: running times for Scenario 1 (3x in-memory-analytics, two runs
// each) across the management policies, varying P for smart-alloc.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  bench::run_runtime_figure(
      "fig03", "Running times for Scenario 1 (SM refers to smart-alloc)",
      core::scenario1,
      {
          mm::PolicySpec::no_tmem(),
          mm::PolicySpec::greedy(),
          mm::PolicySpec::static_alloc(),
          mm::PolicySpec::reconf_static(),
          mm::PolicySpec::smart(0.25),
          mm::PolicySpec::smart(0.5),
          mm::PolicySpec::smart(0.75),
          mm::PolicySpec::smart(1.0),
          mm::PolicySpec::smart(2.0),
      },
      opts);
  return 0;
}
