// Ablation: swap read-ahead cluster size. Clustering mostly benefits the
// *disk* path, so it rescues the no-tmem baseline on sequential workloads
// (usemem) while tmem configurations barely notice — i.e. tmem's advantage
// in the paper's figures already includes a kernel that does read-ahead.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  const core::ScenarioSpec spec = core::usemem_scenario(opts.scale);

  std::printf("=== ablation: swap read-ahead cluster (usemem) ===\n\n");
  std::printf("%-10s %14s %14s %18s\n", "cluster", "no-tmem (s)",
              "greedy (s)", "readahead pages");

  for (const std::uint32_t cluster : {1u, 2u, 4u, 8u, 16u}) {
    core::NodeConfig cfg = core::scaled_node_defaults(opts.scale);
    cfg.swap_readahead = cluster;
    RunningStats no_tmem_end, greedy_end;
    std::uint64_t ra_pages = 0;
    for (std::size_t rep = 0; rep < opts.repetitions; ++rep) {
      {
        auto node = core::build_node(spec, mm::PolicySpec::no_tmem(),
                                     opts.base_seed + rep, &cfg);
        no_tmem_end.add(to_seconds(node->run(spec.deadline)));
        for (VmId id : node->vm_ids()) {
          ra_pages += node->kernel(id).stats().swapins_readahead;
        }
      }
      {
        auto node = core::build_node(spec, mm::PolicySpec::greedy(),
                                     opts.base_seed + rep, &cfg);
        greedy_end.add(to_seconds(node->run(spec.deadline)));
      }
    }
    std::printf("%-10u %14.2f %14.2f %18llu\n", cluster, no_tmem_end.mean(),
                greedy_end.mean(),
                static_cast<unsigned long long>(ra_pages / opts.repetitions));
  }
  return 0;
}
