// Figure 6: tmem use of all VMs in Scenario 2 for (a) greedy and
// (b) smart-alloc with P = 6%.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  bench::run_usage_figure(
      "fig06", "Tmem use of all VMs in Scenario 2", core::scenario2,
      {mm::PolicySpec::greedy(), mm::PolicySpec::smart(6.0)}, opts);
  return 0;
}
