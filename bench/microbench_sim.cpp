// Microbenchmarks of the simulation substrate: event queue throughput and
// the guest-kernel hot path (the per-page-touch cost that dominates the
// wall-clock time of full-scale scenario runs).
#include <benchmark/benchmark.h>

#include <memory>

#include "guest/guest_kernel.hpp"
#include "hyper/hypervisor.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace smartmem;

void BM_EventScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule((i * 37) % 500, [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventScheduleAndRun);

void BM_GuestTouchResident(benchmark::State& state) {
  sim::Simulator sim;
  hyper::HypervisorConfig hcfg;
  hcfg.total_tmem_pages = 1 << 14;
  hyper::Hypervisor hyp(sim, hcfg);
  hyp.register_vm(1);
  sim::DiskDevice disk(sim, sim::DiskModel{});
  guest::GuestConfig gcfg;
  gcfg.vm = 1;
  gcfg.ram_pages = 1 << 14;
  gcfg.kernel_reserved_pages = 1 << 10;
  gcfg.swap_slots = 1 << 15;
  guest::GuestKernel kernel(sim, hyp, disk, gcfg);
  const auto asid = kernel.create_address_space();
  const Vpn base = kernel.alloc_region(asid, 1 << 12);
  SimTime t = 0;
  for (Vpn v = base; v < base + (1 << 12); ++v) {
    t = kernel.touch(asid, v, true, t).end;
  }
  Vpn v = base;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.touch(asid, v, false, t));
    if (++v == base + (1 << 12)) v = base;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuestTouchResident);

void BM_GuestTouchThrashingTmem(benchmark::State& state) {
  // Working set 2x usable RAM with ample tmem: every touch cycles through
  // reclaim + frontswap put + later get. This is the simulator's worst case.
  sim::Simulator sim;
  hyper::HypervisorConfig hcfg;
  hcfg.total_tmem_pages = 1 << 14;
  hyper::Hypervisor hyp(sim, hcfg);
  hyp.register_vm(1);
  sim::DiskDevice disk(sim, sim::DiskModel{});
  guest::GuestConfig gcfg;
  gcfg.vm = 1;
  gcfg.ram_pages = 1 << 11;
  gcfg.kernel_reserved_pages = 1 << 8;
  gcfg.swap_slots = 1 << 14;
  guest::GuestKernel kernel(sim, hyp, disk, gcfg);
  const auto asid = kernel.create_address_space();
  const PageCount region = 1 << 12;
  const Vpn base = kernel.alloc_region(asid, region);
  SimTime t = 0;
  Vpn v = base;
  for (auto _ : state) {
    t = kernel.touch(asid, v, true, t).end;
    if (++v == base + region) v = base;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuestTouchThrashingTmem);

}  // namespace

BENCHMARK_MAIN();
