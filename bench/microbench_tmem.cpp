// Microbenchmarks of the tmem store and the hypervisor hypercall layer:
// the wall-clock cost of the simulator's own data structures (not simulated
// time). Useful to check the page-granular model stays fast enough for
// full-scale (1 GiB) scenario runs.
#include <benchmark/benchmark.h>

#include "hyper/hypervisor.hpp"
#include "tmem/store.hpp"

namespace {

using namespace smartmem;

void BM_StorePut(benchmark::State& state) {
  const auto capacity = static_cast<PageCount>(state.range(0));
  tmem::StoreConfig scfg;
  scfg.total_pages = capacity;
  tmem::TmemStore store(scfg);
  const auto pool = store.create_pool(1, tmem::PoolType::kPersistent);
  std::uint32_t i = 0;
  for (auto _ : state) {
    ++i;
    const tmem::TmemKey key{pool, 0, i % static_cast<std::uint32_t>(capacity)};
    benchmark::DoNotOptimize(store.put(key, i));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StorePut)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 18);

void BM_StoreGetHit(benchmark::State& state) {
  const auto capacity = static_cast<PageCount>(state.range(0));
  tmem::StoreConfig scfg;
  scfg.total_pages = capacity;
  tmem::TmemStore store(scfg);
  const auto pool = store.create_pool(1, tmem::PoolType::kPersistent);
  for (std::uint32_t i = 0; i < capacity; ++i) {
    store.put(tmem::TmemKey{pool, 0, i}, i);
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    const tmem::TmemKey key{pool, 0, i++ % static_cast<std::uint32_t>(capacity)};
    benchmark::DoNotOptimize(store.get(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreGetHit)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 18);

void BM_StorePutFlushCycle(benchmark::State& state) {
  tmem::StoreConfig scfg;
  scfg.total_pages = 1 << 16;
  tmem::TmemStore store(scfg);
  const auto pool = store.create_pool(1, tmem::PoolType::kPersistent);
  std::uint32_t i = 0;
  for (auto _ : state) {
    const tmem::TmemKey key{pool, 0, i++};
    store.put(key, i);
    store.flush_page(key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StorePutFlushCycle);

void BM_EphemeralEvictionChurn(benchmark::State& state) {
  // Pool permanently full: every put evicts the LRU ephemeral page.
  tmem::StoreConfig scfg;
  scfg.total_pages = 1 << 10;
  tmem::TmemStore store(scfg);
  const auto pool = store.create_pool(1, tmem::PoolType::kEphemeral);
  std::uint32_t i = 0;
  for (auto _ : state) {
    ++i;
    store.put(tmem::TmemKey{pool, 1, i}, i);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EphemeralEvictionChurn);

void BM_HypervisorPutPath(benchmark::State& state) {
  // Algorithm 1 end to end: target check + store insert + counters.
  sim::Simulator sim;
  hyper::HypervisorConfig cfg;
  cfg.total_tmem_pages = 1 << 18;
  hyper::Hypervisor hyp(sim, cfg);
  hyp.register_vm(1);
  hyp.set_targets({{1, 1 << 17}});
  std::uint32_t i = 0;
  for (auto _ : state) {
    ++i;
    const auto idx = i % (1u << 17);
    benchmark::DoNotOptimize(hyp.frontswap_put(1, 0, idx, i));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HypervisorPutPath);

void BM_HypervisorFailedPut(benchmark::State& state) {
  // The E_TMEM fast path: target zero, every put rejected.
  sim::Simulator sim;
  hyper::HypervisorConfig cfg;
  cfg.total_tmem_pages = 1 << 12;
  hyper::Hypervisor hyp(sim, cfg);
  hyp.register_vm(1);
  hyp.set_targets({{1, 0}});
  std::uint32_t i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(hyp.frontswap_put(1, 0, i, i));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HypervisorFailedPut);

void BM_Snapshot(benchmark::State& state) {
  sim::Simulator sim;
  hyper::HypervisorConfig cfg;
  cfg.total_tmem_pages = 1 << 16;
  hyper::Hypervisor hyp(sim, cfg);
  for (VmId vm = 1; vm <= static_cast<VmId>(state.range(0)); ++vm) {
    hyp.register_vm(vm);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hyp.snapshot());
  }
}
BENCHMARK(BM_Snapshot)->Arg(3)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
