// Figure 10: tmem use of all VMs in Scenario 3 for (a) greedy,
// (b) static-alloc, (c) reconf-static and (d) smart-alloc with P = 4%.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  bench::run_usage_figure(
      "fig10", "Tmem use of all VMs in Scenario 3", core::scenario3,
      {mm::PolicySpec::greedy(), mm::PolicySpec::static_alloc(),
       mm::PolicySpec::reconf_static(), mm::PolicySpec::smart(4.0)},
      opts);
  return 0;
}
