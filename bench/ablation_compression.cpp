// Ablation (src/tier): the zswap-style compressed tier.
//
// Sweeps the three knobs that decide whether compressing tmem pays off —
// workload compressibility (the per-VM mean-ratio band), the CPU cost of
// compressing a page on put, and the pool's byte budget — over scenario 1
// under the smart policy, against two uncompressed baselines:
//
//   * dram-only:   the same DRAM, no pool — what the pool's bytes buy;
//   * equal-bytes: DRAM grown by pool_bytes/4096 plain pages — the honest
//     zswap question: carve the bytes out for compression, or just use
//     them as more page frames? Compression wins exactly when the achieved
//     ratio packs more pages into those bytes than 1x frames would, net of
//     the extra CPU latency per access.
//
// The whole grid is deterministic: per-page compressed sizes are a pure
// hash of (seed, vm, kind, object, index), so the CSV is bit-identical for
// every --jobs value.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/strfmt.hpp"
#include "common/thread_pool.hpp"

namespace {

struct Case {
  std::string name;
  double dram_fraction;   // of the scenario's tmem size
  double pool_fraction;   // pool bytes, as a fraction of DRAM bytes (0 = off)
  double min_ratio = 1.5;
  double max_ratio = 4.0;
  smartmem::SimTime put_cost = 9 * smartmem::kMicrosecond;
  bool equal_bytes_dram = false;  // fold pool bytes into DRAM pages instead
};

struct CellResult {
  double mean_run_s = 0.0;
  std::uint64_t failed_puts = 0;
  std::uint64_t disk_swapins = 0;
  std::uint64_t comp_stored = 0;
  std::uint64_t comp_peak_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  const core::ScenarioSpec spec = core::scenario1(opts.scale);

  // Memory-constrained geometry: half the paper's tmem, so the baselines
  // fail puts and the pool's elasticity is visible.
  constexpr double kDram = 0.5;
  constexpr double kPool = 0.25;  // default pool: 25% of DRAM bytes

  std::vector<Case> cases;
  cases.push_back({"dram-only", kDram, 0.0});
  cases.push_back({"equal-bytes", kDram, kPool, 1.5, 4.0,
                   9 * kMicrosecond, true});
  // Ratio band x put cost at the default pool size.
  for (const auto& [band, lo, hi] :
       {std::tuple{"lo-ratio", 1.2, 1.8}, std::tuple{"mid-ratio", 1.5, 4.0},
        std::tuple{"hi-ratio", 2.5, 4.0}}) {
    for (const SimTime cost :
         {4500 * kNanosecond, 9 * kMicrosecond, 18 * kMicrosecond}) {
      cases.push_back({strfmt("%s/put%.1fus", band, to_seconds(cost) * 1e6),
                       kDram, kPool, lo, hi, cost});
    }
  }
  // Pool-size sweep at the default band/cost.
  cases.push_back({"pool-12%", kDram, 0.125});
  cases.push_back({"pool-50%", kDram, 0.5});

  std::printf("=== ablation: compressed tmem tier (scenario 1, smart "
              "P=0.75%%) ===\n");
  std::printf("DRAM %.0f%% of paper size; pool bytes as %% of DRAM bytes\n\n",
              kDram * 100);
  std::printf("%-20s %12s %12s %12s %12s %14s\n", "configuration",
              "mean run (s)", "failed puts", "disk swapins", "comp stored",
              "comp peak (B)");

  // One grid slot per (case, rep); aggregation happens after the barrier in
  // case order, so the table and CSV are independent of --jobs.
  const std::size_t reps = opts.repetitions;
  std::vector<CellResult> cells(cases.size() * reps);
  parallel_for_each(opts.jobs, cells.size(), [&](std::size_t slot) {
    const Case& c = cases[slot / reps];
    const std::uint64_t seed = opts.base_seed + slot % reps;
    core::NodeConfig cfg = core::scaled_node_defaults(opts.scale);
    core::ScenarioSpec scaled = spec;
    scaled.tmem_pages = static_cast<PageCount>(
        static_cast<double>(spec.tmem_pages) * c.dram_fraction);
    const std::uint64_t pool_bytes = static_cast<std::uint64_t>(
        static_cast<double>(scaled.tmem_pages) * c.pool_fraction *
        static_cast<double>(kPageSize));
    if (c.equal_bytes_dram) {
      scaled.tmem_pages += pool_bytes / kPageSize;
    } else if (pool_bytes > 0) {
      cfg.compressed_pool_bytes = pool_bytes;
      cfg.compressibility.min_ratio = c.min_ratio;
      cfg.compressibility.max_ratio = c.max_ratio;
      cfg.costs.tmem_put_compressed = c.put_cost;
    }
    auto node = core::build_node(scaled, mm::PolicySpec::smart(0.75), seed,
                                 &cfg);
    node->run(scaled.deadline);
    CellResult& cell = cells[slot];
    RunningStats run_time;
    for (VmId id : node->vm_ids()) {
      run_time.add(to_seconds(node->runner(id).finish_time() -
                              node->runner(id).start_time()));
      cell.failed_puts += node->hypervisor().vm_data(id).cumul_puts_failed;
      cell.disk_swapins += node->kernel(id).stats().swapins_disk;
    }
    cell.mean_run_s = run_time.mean();
    const auto& stats = node->hypervisor().store().stats();
    cell.comp_stored = stats.compressed_stored + stats.demotions_to_compressed;
    cell.comp_peak_bytes =
        node->hypervisor().store().compressed_pool().peak_bytes();
  });

  std::string csv =
      "case,pool_frac,min_ratio,max_ratio,put_cost_us,mean_run_s,"
      "failed_puts,disk_swapins,comp_stored,comp_peak_bytes\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    CellResult sum;
    RunningStats run_time;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const CellResult& cell = cells[i * reps + rep];
      run_time.add(cell.mean_run_s);
      sum.failed_puts += cell.failed_puts;
      sum.disk_swapins += cell.disk_swapins;
      sum.comp_stored += cell.comp_stored;
      sum.comp_peak_bytes = std::max(sum.comp_peak_bytes,
                                     cell.comp_peak_bytes);
    }
    std::printf("%-20s %12.2f %12llu %12llu %12llu %14llu\n", c.name.c_str(),
                run_time.mean(),
                static_cast<unsigned long long>(sum.failed_puts / reps),
                static_cast<unsigned long long>(sum.disk_swapins / reps),
                static_cast<unsigned long long>(sum.comp_stored / reps),
                static_cast<unsigned long long>(sum.comp_peak_bytes));
    csv += strfmt("%s,%g,%g,%g,%g,%.6f,%llu,%llu,%llu,%llu\n", c.name.c_str(),
                  c.pool_fraction, c.min_ratio, c.max_ratio,
                  to_seconds(c.equal_bytes_dram || c.pool_fraction == 0
                                 ? 9 * kMicrosecond
                                 : c.put_cost) * 1e6,
                  run_time.mean(),
                  static_cast<unsigned long long>(sum.failed_puts / reps),
                  static_cast<unsigned long long>(sum.disk_swapins / reps),
                  static_cast<unsigned long long>(sum.comp_stored / reps),
                  static_cast<unsigned long long>(sum.comp_peak_bytes));
  }
  if (!opts.csv_dir.empty()) {
    const std::string path = opts.csv_dir + "/ablation_compression.csv";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(csv.data(), 1, csv.size(), f);
      std::fclose(f);
      std::printf("\nwrote %s\n", path.c_str());
    }
  }
  std::printf("\nCompression beats the dram-only baseline whenever the pool\n"
              "absorbs overflow; it beats even the equal-bytes baseline once\n"
              "the achieved ratio packs more pages into the pool's bytes\n"
              "than plain frames would — unless the per-put compression\n"
              "cost eats the gain.\n");
  return 0;
}
