// Ablation: smart-alloc's target-decrease threshold (Algorithm 4 line 17).
// The paper introduces the threshold to "avoid premature target decrements
// which might cause the targets to oscillate"; this bench quantifies that.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  const core::ScenarioSpec spec = core::scenario1(opts.scale);

  std::printf("=== ablation: smart-alloc decrease threshold (scenario 1, P=0.75%%) ===\n");
  std::printf("threshold as a fraction of total tmem; 'auto' = one increment (P%%)\n\n");
  std::printf("%-12s %12s %12s %14s\n", "threshold", "mean run (s)",
              "target sends", "failed puts");

  struct Case {
    const char* name;
    double fraction;  // of total tmem; <0 = auto
  };
  for (const Case c : {Case{"0 (none)", 0.00001}, Case{"auto (P%)", -1.0},
                       Case{"2%", 0.02}, Case{"5%", 0.05}, Case{"10%", 0.10}}) {
    mm::PolicySpec policy = mm::PolicySpec::smart(0.75);
    if (c.fraction > 0) {
      policy.smart_config.threshold_pages = static_cast<PageCount>(
          c.fraction * static_cast<double>(spec.tmem_pages));
      if (policy.smart_config.threshold_pages == 0) {
        policy.smart_config.threshold_pages = 1;
      }
    }
    RunningStats run_time;
    std::uint64_t sends = 0, failed = 0;
    for (std::size_t rep = 0; rep < opts.repetitions; ++rep) {
      auto node = core::build_node(spec, policy, opts.base_seed + rep);
      node->run(spec.deadline);
      for (VmId id : node->vm_ids()) {
        run_time.add(to_seconds(node->runner(id).finish_time() -
                                node->runner(id).start_time()));
        failed += node->hypervisor().vm_data(id).cumul_puts_failed;
      }
      sends += node->manager()->targets_sent();
    }
    std::printf("%-12s %12.2f %12llu %14llu\n", c.name, run_time.mean(),
                static_cast<unsigned long long>(sends / opts.repetitions),
                static_cast<unsigned long long>(failed / opts.repetitions));
  }
  return 0;
}
