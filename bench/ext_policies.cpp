// Extension bench: the paper's §VII frames SmarTmem as "a framework and
// baseline for future development of more sophisticated tmem memory
// policies". This bench races the paper's smart-alloc against the two
// extension policies shipped with the library — swap-rate proportional
// sharing (vMCA-style) and working-set-size estimation (Zhao-et-al-style) —
// on the staggered scenarios where adaptiveness matters most.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);

  for (auto* scenario : {&core::scenario2, &core::scenario3}) {
    const core::ScenarioSpec spec = scenario(opts.scale);
    std::printf("=== extension policies on %s ===\n", spec.name.c_str());
    std::printf("%-16s %10s %10s %10s %14s %14s\n", "policy", "VM1 (s)",
                "VM2 (s)", "VM3 (s)", "failed puts", "target sends");
    for (const auto& policy :
         {mm::PolicySpec::greedy(), mm::PolicySpec::smart(4.0),
          mm::PolicySpec::swap_rate(), mm::PolicySpec::wss()}) {
      RunningStats vm_time[3];
      std::uint64_t failed = 0, sends = 0;
      for (std::size_t rep = 0; rep < opts.repetitions; ++rep) {
        auto node = core::build_node(spec, policy, opts.base_seed + rep);
        node->run(spec.deadline);
        for (VmId id : node->vm_ids()) {
          vm_time[id - 1].add(to_seconds(node->runner(id).finish_time() -
                                         node->runner(id).start_time()));
          failed += node->hypervisor().vm_data(id).cumul_puts_failed;
        }
        if (node->manager()) sends += node->manager()->targets_sent();
      }
      std::printf("%-16s %10.2f %10.2f %10.2f %14llu %14llu\n",
                  policy.label().c_str(), vm_time[0].mean(), vm_time[1].mean(),
                  vm_time[2].mean(),
                  static_cast<unsigned long long>(failed / opts.repetitions),
                  static_cast<unsigned long long>(sends / opts.repetitions));
    }
    std::printf("\n");
  }
  return 0;
}
