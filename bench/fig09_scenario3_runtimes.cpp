// Figure 9: running times for Scenario 3 (2x graph-analytics + 1 large
// in-memory-analytics VM staggered 30s).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  bench::run_runtime_figure(
      "fig09", "Running times for Scenario 3", core::scenario3,
      {
          mm::PolicySpec::no_tmem(),
          mm::PolicySpec::greedy(),
          mm::PolicySpec::static_alloc(),
          mm::PolicySpec::reconf_static(),
          mm::PolicySpec::smart(2.0),
          mm::PolicySpec::smart(4.0),
      },
      opts);
  return 0;
}
