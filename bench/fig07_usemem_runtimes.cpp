// Figure 7: running times for the usemem scenario — per-VM time spent at
// each allocation size (the staggered start/stop of Table II applies).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  bench::run_runtime_figure(
      "fig07", "Running times for the usemem scenario", core::usemem_scenario,
      {
          mm::PolicySpec::no_tmem(),
          mm::PolicySpec::greedy(),
          mm::PolicySpec::static_alloc(),
          mm::PolicySpec::reconf_static(),
          mm::PolicySpec::smart(2.0),
      },
      opts);
  return 0;
}
