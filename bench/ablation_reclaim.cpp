// Ablation: the hypervisor's slow background reclaim ("the hypervisor can
// reclaim tmem pages from a VM very slowly"). It only acts on *ephemeral*
// (cleancache) pages of VMs sitting above their target, so the bench needs
// (a) cleancache on, and (b) targets that drop below established usage:
// Scenario 3 under smart-alloc with a large P provides that — targets of
// the early VMs shrink when VM3 arrives and when their own slack grows,
// leaving cleancache pages stranded above the new target.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  const core::ScenarioSpec spec = core::scenario3(opts.scale);

  std::printf("=== ablation: hypervisor slow reclaim (scenario 3 + cleancache, "
              "smart P=6%%) ===\n\n");
  std::printf("%-18s %12s %16s %16s\n", "reclaim rate", "mean run (s)",
              "pages reclaimed", "cleancache hits");

  struct Case {
    const char* name;
    bool enabled;
    PageCount pages_per_tick;
  };
  for (const Case c : {Case{"off", false, 0}, Case{"128/tick", true, 128},
                       Case{"512/tick", true, 512},
                       Case{"4096/tick", true, 4096}}) {
    core::NodeConfig cfg = core::scaled_node_defaults(opts.scale);
    cfg.cleancache = true;
    cfg.slow_reclaim = c.enabled;
    if (c.enabled) cfg.slow_reclaim_pages_per_tick = c.pages_per_tick;
    RunningStats run_time;
    std::uint64_t reclaimed = 0, cc_hits = 0;
    for (std::size_t rep = 0; rep < opts.repetitions; ++rep) {
      auto node = core::build_node(spec, mm::PolicySpec::smart(6.0),
                                   opts.base_seed + rep, &cfg);
      node->run(spec.deadline);
      for (VmId id : node->vm_ids()) {
        run_time.add(to_seconds(node->runner(id).finish_time() -
                                node->runner(id).start_time()));
        reclaimed += node->hypervisor().vm_data(id).pages_reclaimed;
        cc_hits += node->kernel(id).stats().cleancache_hits;
      }
    }
    std::printf("%-18s %12.2f %16llu %16llu\n", c.name, run_time.mean(),
                static_cast<unsigned long long>(reclaimed / opts.repetitions),
                static_cast<unsigned long long>(cc_hits / opts.repetitions));
  }
  return 0;
}
