// Ablation: zero-page deduplication in the tmem store (an optional Xen tmem
// feature the paper's setup leaves off). Real heaps contain 15-30% all-zero
// pages (calloc'd buffers, sparse structures); dedup stores them without
// consuming a frame, effectively enlarging the pool. The effect only shows
// when capacity is scarce, so this bench quarters Scenario 1's tmem.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  core::ScenarioSpec spec = core::scenario1(opts.scale);
  // Quarter the pool so capacity is actually scarce; dedup's frameless zero
  // pages then translate directly into avoided disk traffic.
  spec.tmem_pages /= 4;

  std::printf("=== ablation: zero-page dedup in the tmem store (scenario 1, "
              "tmem/4, greedy) ===\n");
  std::printf("guests write ~20%% zero pages (calloc'd/sparse data)\n\n");
  std::printf("%-8s %12s %14s %16s\n", "dedup", "mean run (s)", "disk swapins",
              "zero pages");

  for (const bool dedup : {false, true}) {
    core::NodeConfig cfg = core::scaled_node_defaults(opts.scale);
    cfg.zero_page_dedup = dedup;
    cfg.zero_write_period = 5;  // ~20% zero pages, typical of real heaps
    RunningStats run_time;
    std::uint64_t disk_swapins = 0, zero_pages = 0;
    for (std::size_t rep = 0; rep < opts.repetitions; ++rep) {
      auto node = core::build_node(spec, mm::PolicySpec::greedy(),
                                   opts.base_seed + rep, &cfg);
      node->run(spec.deadline);
      for (VmId id : node->vm_ids()) {
        run_time.add(to_seconds(node->runner(id).finish_time() -
                                node->runner(id).start_time()));
        disk_swapins += node->kernel(id).stats().swapins_disk;
      }
      zero_pages += node->hypervisor().store().stats().zero_pages_deduped;
    }
    std::printf("%-8s %12.2f %14llu %16llu\n", dedup ? "on" : "off",
                run_time.mean(),
                static_cast<unsigned long long>(disk_swapins / opts.repetitions),
                static_cast<unsigned long long>(zero_pages / opts.repetitions));
  }
  return 0;
}
