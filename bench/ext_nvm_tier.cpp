// Extension bench (Ex-Tmem, Venkatesan et al. [26] — the heterogeneous-
// memory direction the paper's conclusions point at): back overflow tmem
// capacity with NVM. The question the original Ex-Tmem paper asks is
// whether slower-but-big NVM in front of the disk pays off; here we also
// show that SmarTmem's policies transparently manage the combined capacity.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  const core::ScenarioSpec spec = core::scenario1(opts.scale);

  std::printf("=== extension: Ex-Tmem NVM tier (scenario 1, smart P=0.75%%) ===\n");
  std::printf("DRAM/NVM sizes below are the unscaled equivalents\n\n");
  std::printf("%-22s %12s %14s %14s\n", "configuration", "mean run (s)",
              "disk swapins", "nvm pages");

  struct Case {
    const char* name;
    double dram_fraction;  // of the scenario's tmem size
    double nvm_fraction;
  };
  for (const Case c : {Case{"DRAM 1G (paper)", 1.0, 0.0},
                       Case{"DRAM 512M", 0.5, 0.0},
                       Case{"DRAM 512M + NVM 1G", 0.5, 1.0},
                       Case{"DRAM 512M + NVM 2G", 0.5, 2.0},
                       Case{"DRAM 1G + NVM 1G", 1.0, 1.0}}) {
    core::NodeConfig cfg = core::scaled_node_defaults(opts.scale);
    // build_node overwrites tmem_pages from the scenario; scale it here by
    // adjusting a copy of the spec instead.
    core::ScenarioSpec scaled = spec;
    scaled.tmem_pages = static_cast<PageCount>(
        static_cast<double>(spec.tmem_pages) * c.dram_fraction);
    cfg.nvm_tmem_pages = static_cast<PageCount>(
        static_cast<double>(spec.tmem_pages) * c.nvm_fraction);

    RunningStats run_time;
    std::uint64_t disk_swapins = 0;
    PageCount nvm_used_peak = 0;
    for (std::size_t rep = 0; rep < opts.repetitions; ++rep) {
      auto node = core::build_node(scaled, mm::PolicySpec::smart(0.75),
                                   opts.base_seed + rep, &cfg);
      node->run(scaled.deadline);
      for (VmId id : node->vm_ids()) {
        run_time.add(to_seconds(node->runner(id).finish_time() -
                                node->runner(id).start_time()));
        disk_swapins += node->kernel(id).stats().swapins_disk;
      }
      nvm_used_peak = std::max(
          nvm_used_peak, node->hypervisor().store().stats().nvm_peak_used);
    }
    std::printf("%-22s %12.2f %14llu %14llu\n", c.name, run_time.mean(),
                static_cast<unsigned long long>(disk_swapins / opts.repetitions),
                static_cast<unsigned long long>(nvm_used_peak));
  }
  std::printf("\nNVM absorbs the overflow that a smaller DRAM pool would\n"
              "send to disk, at a fraction of DRAM's cost per byte.\n");
  return 0;
}
