// Ablation: the statistics sampling interval. The paper fixes it at one
// second; this bench shows how smart-alloc's adaptiveness degrades when the
// control loop runs slower (and what a faster loop would buy).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  const core::ScenarioSpec spec = core::scenario2(opts.scale);

  std::printf("=== ablation: sampling interval (scenario 2, smart P=6%%) ===\n");
  std::printf("paper value: 1.0s. Interval below is the *unscaled* value; the\n");
  std::printf("run itself uses interval*scale to stay comparable.\n\n");
  std::printf("%-12s %10s %10s %10s %12s\n", "interval", "VM1 (s)", "VM2 (s)",
              "VM3 (s)", "target sends");

  for (const double interval_s : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::NodeConfig cfg = core::scaled_node_defaults(opts.scale);
    cfg.sample_interval = static_cast<SimTime>(
        interval_s * static_cast<double>(kSecond) * opts.scale);
    RunningStats vm_time[3];
    std::uint64_t sends = 0;
    for (std::size_t rep = 0; rep < opts.repetitions; ++rep) {
      auto node = core::build_node(spec, mm::PolicySpec::smart(6.0),
                                   opts.base_seed + rep, &cfg);
      node->run(spec.deadline);
      for (VmId id : node->vm_ids()) {
        vm_time[id - 1].add(to_seconds(node->runner(id).finish_time() -
                                       node->runner(id).start_time()));
      }
      sends += node->manager()->targets_sent();
    }
    std::printf("%-12.2f %10.2f %10.2f %10.2f %12llu\n", interval_s,
                vm_time[0].mean(), vm_time[1].mean(), vm_time[2].mean(),
                static_cast<unsigned long long>(sends / opts.repetitions));
  }

  // Adaptive rows: instead of a fixed cadence the MM's IntervalController
  // stretches/shrinks the interval at runtime (failed-put velocity + uplink
  // backpressure), shipping updates over the sequenced downlink. Each row
  // starts the controller from a different initial interval; 'changes'
  // counts accepted retunes and 'final' is where the cadence settled.
  std::printf("\n--- adaptive interval (controller on, same scenario) ---\n");
  std::printf("%-12s %10s %10s %10s %12s %8s %8s\n", "initial", "VM1 (s)",
              "VM2 (s)", "VM3 (s)", "target sends", "changes", "final");
  for (const double interval_s : {0.25, 1.0, 4.0}) {
    core::NodeConfig cfg = core::scaled_node_defaults(opts.scale);
    cfg.sample_interval = static_cast<SimTime>(
        interval_s * static_cast<double>(kSecond) * opts.scale);
    cfg.adaptive_interval.enabled = true;
    RunningStats vm_time[3];
    std::uint64_t sends = 0;
    std::uint64_t changes = 0;
    double final_s = 0.0;
    for (std::size_t rep = 0; rep < opts.repetitions; ++rep) {
      auto node = core::build_node(spec, mm::PolicySpec::smart(6.0),
                                   opts.base_seed + rep, &cfg);
      node->run(spec.deadline);
      for (VmId id : node->vm_ids()) {
        vm_time[id - 1].add(to_seconds(node->runner(id).finish_time() -
                                       node->runner(id).start_time()));
      }
      sends += node->manager()->targets_sent();
      changes += node->manager()->interval_controller()->changes();
      final_s += to_seconds(node->manager()->current_interval());
    }
    std::printf("%-12.2f %10.2f %10.2f %10.2f %12llu %8llu %8.3f\n",
                interval_s, vm_time[0].mean(), vm_time[1].mean(),
                vm_time[2].mean(),
                static_cast<unsigned long long>(sends / opts.repetitions),
                static_cast<unsigned long long>(changes / opts.repetitions),
                final_s / static_cast<double>(opts.repetitions) / opts.scale);
  }
  return 0;
}
