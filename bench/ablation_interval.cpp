// Ablation: the statistics sampling interval. The paper fixes it at one
// second; this bench shows how smart-alloc's adaptiveness degrades when the
// control loop runs slower (and what a faster loop would buy).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace smartmem;
  const auto opts = bench::parse_options(argc, argv);
  const core::ScenarioSpec spec = core::scenario2(opts.scale);

  std::printf("=== ablation: sampling interval (scenario 2, smart P=6%%) ===\n");
  std::printf("paper value: 1.0s. Interval below is the *unscaled* value; the\n");
  std::printf("run itself uses interval*scale to stay comparable.\n\n");
  std::printf("%-12s %10s %10s %10s %12s\n", "interval", "VM1 (s)", "VM2 (s)",
              "VM3 (s)", "target sends");

  for (const double interval_s : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::NodeConfig cfg = core::scaled_node_defaults(opts.scale);
    cfg.sample_interval = static_cast<SimTime>(
        interval_s * static_cast<double>(kSecond) * opts.scale);
    RunningStats vm_time[3];
    std::uint64_t sends = 0;
    for (std::size_t rep = 0; rep < opts.repetitions; ++rep) {
      auto node = core::build_node(spec, mm::PolicySpec::smart(6.0),
                                   opts.base_seed + rep, &cfg);
      node->run(spec.deadline);
      for (VmId id : node->vm_ids()) {
        vm_time[id - 1].add(to_seconds(node->runner(id).finish_time() -
                                       node->runner(id).start_time()));
      }
      sends += node->manager()->targets_sent();
    }
    std::printf("%-12.2f %10.2f %10.2f %10.2f %12llu\n", interval_s,
                vm_time[0].mean(), vm_time[1].mean(), vm_time[2].mean(),
                static_cast<unsigned long long>(sends / opts.repetitions));
  }
  return 0;
}
