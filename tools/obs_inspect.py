#!/usr/bin/env python3
"""Inspect the observability outputs written by the --trace-out /
--metrics-out / --audit-out bench flags (src/obs).

Usage:
  obs_inspect.py trace   <trace.json>    [--check]
  obs_inspect.py metrics <metrics.jsonl> [--check] [--grep SUBSTR]
  obs_inspect.py audit   <audit.jsonl>   [--check] [--vm N]
  obs_inspect.py fleet-report <metrics.jsonl> [--check]

Each subcommand parses one pillar's export, prints a human summary, and
exits non-zero when the file is malformed — `--check` suppresses the
summary so CI can use it as a pure validator.

  trace    Chrome trace-event JSON (load interactively at ui.perfetto.dev).
           Summarizes events per process/track, phase mix and time range.
  metrics  Registry snapshots, JSONL (one {"t_s":..,"metrics":{..}} object
           per line) or CSV (".csv" exports). Summarizes rows, columns and
           final values.
  audit    Policy decision audit log, JSONL (one DecisionRecord per line).
           Summarizes verdicts, triggering conditions and send outcomes.
  fleet-report
           One-page control-plane health report from a *rack* metrics
           export (fig_fleet_scaling --metrics-out): per-hop wire bytes and
           drops, per-tier occupancy and get-hit attribution (DRAM /
           compressed / NVM; "-" for tiers a node does not have),
           delta-encoding health (resync frequency, clean decides,
           suppression), broken-chain and stale-seq drops, applied roll-up
           staleness quantiles, and — when the run was profiled
           (--profile) — the engine's per-shard occupancy and bottleneck
           attribution. `--fleet-report FILE` is accepted as an alias.
"""

import argparse
import collections
import csv
import json
import sys


def fail(msg):
    print(f"obs_inspect: {msg}", file=sys.stderr)
    sys.exit(1)


def load_jsonl(path):
    rows = []
    with open(path, encoding="utf-8") as fh:
        for n, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                fail(f"{path}:{n}: invalid JSON: {exc}")
    return rows


def cmd_trace(args):
    try:
        with open(args.file, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{args.file}: {exc}")
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        fail(f"{args.file}: no traceEvents array")

    procs, threads = {}, {}
    for ev in events:
        if ev.get("ph") == "M":
            if ev.get("name") == "process_name":
                procs[ev["pid"]] = ev["args"]["name"]
            elif ev.get("name") == "thread_name":
                threads[(ev["pid"], ev["tid"])] = ev["args"]["name"]

    phases = collections.Counter(ev.get("ph") for ev in events)
    per_track = collections.Counter()
    names = collections.Counter()
    t_lo, t_hi = None, 0.0
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("X", "i", "C"):
            continue
        key = (procs.get(ev.get("pid"), "?"),
               threads.get((ev.get("pid"), ev.get("tid")), "?"))
        per_track[key] += 1
        names[ev.get("name", "?")] += 1
        ts = float(ev.get("ts", 0))
        end = ts + float(ev.get("dur", 0))
        t_lo = ts if t_lo is None else min(t_lo, ts)
        t_hi = max(t_hi, end)

    if args.check:
        if not events:
            fail(f"{args.file}: empty trace")
        return
    print(f"{args.file}: {len(events)} events "
          f"(spans {phases['X']}, instants {phases['i']}, "
          f"counters {phases['C']}, metadata {phases['M']})")
    if t_lo is not None:
        print(f"time range: {t_lo / 1e6:.3f}s .. {t_hi / 1e6:.3f}s (sim time)")
    print("events per track:")
    for (proc, thread), n in sorted(per_track.items()):
        print(f"  {proc:>10s}/{thread:<16s} {n}")
    print("top event names:")
    for name, n in names.most_common(args.top):
        print(f"  {name:<28s} {n}")


def load_metrics(path):
    """Load Registry snapshots (JSONL or .csv export) as a list of
    {"t_s": float, "metrics": {name: float|None}} rows."""
    def num(v):
        if v in ("", "null", "nan"):
            return None
        return float(v)

    if path.endswith(".csv"):
        try:
            with open(path, encoding="utf-8", newline="") as fh:
                table = list(csv.DictReader(fh))
        except (OSError, csv.Error) as exc:
            fail(f"{path}: {exc}")
        if not table:
            fail(f"{path}: empty metrics CSV")
        return [{"t_s": float(r.pop("t_s", "nan")),
                 "metrics": {k: num(v) for k, v in r.items()}}
                for r in table]
    rows = load_jsonl(path)
    for r in rows:
        if "t_s" not in r or "metrics" not in r:
            fail(f"{path}: snapshot missing t_s/metrics: {r}")
    return rows


def cmd_metrics(args):
    rows = load_metrics(args.file)
    if args.check:
        if not rows:
            fail(f"{args.file}: no snapshots")
        return
    last = rows[-1]
    names = sorted(last["metrics"])
    if args.grep:
        names = [n for n in names if args.grep in n]
    print(f"{args.file}: {len(rows)} snapshots, "
          f"{len(last['metrics'])} metrics, "
          f"t = {rows[0]['t_s']:.3f}s .. {last['t_s']:.3f}s")
    print(f"final values{f' (matching {args.grep!r})' if args.grep else ''}:")
    for name in names:
        v = last["metrics"][name]
        print(f"  {name:<36s} {'null' if v is None else f'{v:g}'}")


def cmd_audit(args):
    rows = load_jsonl(args.file)
    for n, r in enumerate(rows, 1):
        for key in ("stats_seq", "decided_at_s", "policy", "vms"):
            if key not in r:
                fail(f"{args.file}: record {n} missing '{key}'")
    if args.check:
        if not rows:
            fail(f"{args.file}: no decision records")
        return
    sent = sum(1 for r in rows if r.get("sent"))
    suppressed = sum(1 for r in rows if r.get("suppressed"))
    renorm = sum(1 for r in rows if r.get("renormalized"))
    verdicts = collections.Counter()
    conditions = collections.Counter()
    for r in rows:
        for vm in r["vms"]:
            if args.vm and vm.get("vm") != args.vm:
                continue
            verdicts[vm.get("verdict", "?")] += 1
            conditions[vm.get("condition", "?")] += 1
    ages = [r.get("stats_age_intervals", 0.0) for r in rows]
    print(f"{args.file}: {len(rows)} decisions by "
          f"{rows[0]['policy'] if rows else '?'} "
          f"(sent {sent}, suppressed {suppressed}, renormalized {renorm})")
    if ages:
        print(f"stats staleness: mean {sum(ages) / len(ages):.3f} "
              f"max {max(ages):.3f} sampling intervals")
    scope = f" (vm {args.vm})" if args.vm else ""
    print(f"per-VM verdicts{scope}:")
    for verdict, n in verdicts.most_common():
        print(f"  {verdict:<8s} {n}")
    print(f"triggering conditions{scope}:")
    for cond, n in conditions.most_common():
        print(f"  {cond:<28s} {n}")


def cmd_fleet_report(args):
    rows = load_metrics(args.file)
    if not rows:
        fail(f"{args.file}: no snapshots")
    last = rows[-1]["metrics"]

    def g(name, default=None):
        v = last.get(name)
        return default if v is None else v

    nodes = set()
    for name in last:
        for prefix in ("n", "gm.n"):
            if name.startswith(prefix):
                digits = name[len(prefix):].split(".", 1)[0]
                if digits.isdigit():
                    nodes.add(int(digits))
    nodes = sorted(nodes)

    if args.check:
        if not nodes:
            fail(f"{args.file}: no per-node rack metrics (n<i>.*) — "
                 "not a fleet/rack export?")
        for key in ("gm.decisions", "gm.rollups_seen",
                    "rack.rollups_suppressed"):
            if key not in last:
                fail(f"{args.file}: missing required metric '{key}'")
        for i in nodes:
            for key in (f"n{i}.gm_up.sent", f"n{i}.gm_down.sent",
                        f"n{i}.ctl.stats_full_sends"):
                if key not in last:
                    fail(f"{args.file}: missing required metric '{key}'")
        return

    def fmt(v, spec="g"):
        return "-" if v is None else f"{v:{spec}}"

    print(f"fleet health report — {args.file}")
    print(f"  {len(rows)} snapshots, t = {rows[0]['t_s']:.3f}s .. "
          f"{rows[-1]['t_s']:.3f}s (sim), {len(nodes)} nodes")

    print("\nrack hops (node <-> global manager), final totals:")
    print(f"  {'node':<6s} {'up msgs':>8s} {'up bytes':>10s} "
          f"{'down msgs':>9s} {'down bytes':>10s} {'drops':>6s} "
          f"{'lat p95 us':>10s}")
    for i in nodes:
        drops = sum(g(f"n{i}.{hop}.{kind}", 0.0)
                    for hop in ("gm_up", "gm_down")
                    for kind in ("dropped_loss", "dropped_down",
                                 "dropped_queue"))
        lat = max((g(f"n{i}.{hop}.latency_us.p95") or 0.0)
                  for hop in ("gm_up", "gm_down"))
        print(f"  n{i:<5d} {fmt(g(f'n{i}.gm_up.sent'), '8.0f')} "
              f"{fmt(g(f'n{i}.gm_up.payload_bytes'), '10.0f')} "
              f"{fmt(g(f'n{i}.gm_down.sent'), '9.0f')} "
              f"{fmt(g(f'n{i}.gm_down.payload_bytes'), '10.0f')} "
              f"{drops:6.0f} {lat:10.1f}")

    tier_nodes = [i for i in nodes
                  if g(f"n{i}.tier.dram.total_pages") is not None]
    if tier_nodes:
        def occ_pct(used, total):
            if used is None or not total:
                return "-"
            return f"{100.0 * used / total:.1f}"

        print("\nper-tier occupancy and hit attribution (final):")
        print(f"  {'node':<6s} {'dram occ%':>9s} {'comp occ%':>9s} "
              f"{'nvm occ%':>8s} {'hit dram%':>9s} {'hit comp%':>9s} "
              f"{'hit nvm%':>8s}")
        for i in tier_nodes:
            dram = occ_pct(g(f"n{i}.tier.dram.used_pages"),
                           g(f"n{i}.tier.dram.total_pages"))
            comp = occ_pct(g(f"n{i}.tier.compressed.bytes_used"),
                           g(f"n{i}.tier.compressed.capacity_bytes"))
            nvm = occ_pct(g(f"n{i}.tier.nvm.used_pages"),
                          g(f"n{i}.tier.nvm.total_pages"))
            hits = {t: g(f"n{i}.tier.{t}.gets_hit")
                    for t in ("dram", "compressed", "nvm")}
            total_hits = sum(v for v in hits.values() if v is not None)
            rates = {t: "-" if hits[t] is None
                     else f"{100.0 * hits[t] / total_hits:.1f}"
                     if total_hits else "0.0"
                     for t in hits}
            print(f"  n{i:<5d} {dram:>9s} {comp:>9s} {nvm:>8s} "
                  f"{rates['dram']:>9s} {rates['compressed']:>9s} "
                  f"{rates['nvm']:>8s}")

    decisions = g("gm.decisions", 0.0)
    clean = g("gm.clean_decides", 0.0)
    print("\ndelta-encoding health:")
    print(f"  gm decides: {decisions:.0f} total, {clean:.0f} clean "
          f"(no roll-up change: "
          f"{100.0 * clean / decisions if decisions else 0.0:.1f}%)")
    print(f"  quota sends skipped (unchanged): "
          f"{g('gm.quota_sends_skipped', 0.0):.0f} / "
          f"{g('gm.quotas_sent', 0.0) + g('gm.quota_sends_skipped', 0.0):.0f}"
          f", node roll-ups suppressed (unchanged): "
          f"{g('rack.rollups_suppressed', 0.0):.0f}")
    print(f"  {'node':<6s} {'stats full':>10s} {'stats delta':>11s} "
          f"{'resync %':>8s} {'tgt full':>8s}")
    for i in nodes:
        full = g(f"n{i}.ctl.stats_full_sends", 0.0)
        delta = g(f"n{i}.ctl.stats_delta_sends", 0.0)
        total = full + delta
        print(f"  n{i:<5d} {full:10.0f} {delta:11.0f} "
              f"{100.0 * full / total if total else 0.0:8.1f} "
              f"{g(f'n{i}.ctl.targets_full_sends', 0.0):8.0f}")

    breaks = {i: g(f"n{i}.ctl.stats_chain_breaks", 0.0)
              + g(f"n{i}.ctl.target_chain_breaks", 0.0) for i in nodes}
    stale = {i: g(f"n{i}.ctl.stale_samples_dropped", 0.0)
             + g(f"n{i}.ctl.stale_targets_dropped", 0.0) for i in nodes}
    gm_stale = g("gm.stale_rollups_dropped", 0.0)
    print("\nrobustness (broken delta chains and stale-seq drops):")
    print(f"  chain breaks: {sum(breaks.values()):.0f} across "
          f"{sum(1 for v in breaks.values() if v)} nodes, "
          f"stale drops: {sum(stale.values()):.0f} node-side + "
          f"{gm_stale:.0f} gm-side")
    for i in nodes:
        if breaks[i] or stale[i]:
            print(f"  n{i}: {breaks[i]:.0f} chain breaks, "
                  f"{stale[i]:.0f} stale drops")

    print("\napplied-seq staleness (sampling intervals):")
    print(f"  gm roll-up age: p50 {fmt(g('gm.rollup_age_intervals.p50'), '.2f')}"
          f", p95 {fmt(g('gm.rollup_age_intervals.p95'), '.2f')}"
          f", p99 {fmt(g('gm.rollup_age_intervals.p99'), '.2f')} "
          f"({g('gm.rollup_age_intervals.count', 0.0):.0f} applied)")
    worst_gm = max(((g(f"gm.n{i}.rollup_age_intervals"), i) for i in nodes),
                   key=lambda t: -1.0 if t[0] is None else t[0],
                   default=(None, None))
    if worst_gm[0] is not None:
        print(f"  stalest node roll-up at gm: n{worst_gm[1]} "
              f"({worst_gm[0]:.2f} intervals old)")
    mm_ages = [(g(f"n{i}.ctl.stats_age_intervals"), i) for i in nodes]
    mm_ages = [t for t in mm_ages if t[0] is not None]
    if mm_ages:
        worst_mm = max(mm_ages)
        print(f"  node MM guest-stats age: mean "
              f"{sum(t[0] for t in mm_ages) / len(mm_ages):.2f}, "
              f"worst n{worst_mm[1]} ({worst_mm[0]:.2f})")

    if g("engine.windows") is None:
        print("\nengine self-profile: not present "
              "(run with --profile to collect it)")
        return
    print("\nengine self-profile (wall clock, conservative windows):")
    print(f"  {g('engine.windows', 0.0):.0f} windows, "
          f"{g('engine.idle_skip_s', 0.0):.1f}s sim skipped while idle, "
          f"critical path {g('engine.window_wall_ms', 0.0):.1f}ms, "
          f"drain {g('engine.drain_ms', 0.0):.2f}ms, "
          f"hook {g('engine.hook_ms', 0.0):.2f}ms")
    shards = sorted({name.split(".")[1] for name in last
                     if name.startswith("engine.")
                     and name.endswith(".busy_ms")})
    rows_ = [(g(f"engine.{s}.busy_ms", 0.0),
              g(f"engine.{s}.critical_windows", 0.0), s) for s in shards]
    bottleneck = max(rows_, key=lambda t: (t[1], t[0]), default=None)
    print(f"  {'shard':<6s} {'busy ms':>9s} {'barrier ms':>10s} "
          f"{'occ p95':>8s} {'events':>9s} {'inj out':>8s} "
          f"{'critical':>8s}")
    for busy, crit, s in sorted(rows_, reverse=True)[:args.top]:
        mark = "  <- bottleneck" if bottleneck and s == bottleneck[2] else ""
        print(f"  {s:<6s} {busy:9.1f} "
              f"{g(f'engine.{s}.barrier_wait_ms', 0.0):10.1f} "
              f"{fmt(g(f'engine.{s}.occupancy.p95'), '8.2f')} "
              f"{g(f'engine.{s}.events', 0.0):9.0f} "
              f"{g(f'engine.{s}.injections_out', 0.0):8.0f} "
              f"{crit:8.0f}{mark}")
    if len(rows_) > args.top:
        print(f"  ... {len(rows_) - args.top} more shards")
    if bottleneck:
        print(f"  bottleneck: {bottleneck[2]} "
              f"(critical in {bottleneck[1]:.0f} of "
              f"{g('engine.windows', 0.0):.0f} windows)")


def main():
    # Accept `--fleet-report FILE` as the ISSUE-facing spelling of the
    # `fleet-report FILE` subcommand.
    sys.argv = ["fleet-report" if a == "--fleet-report" else a
                for a in sys.argv]
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("trace", help="summarize a Chrome trace-event JSON")
    p.add_argument("file")
    p.add_argument("--check", action="store_true",
                   help="validate only; no summary output")
    p.add_argument("--top", type=int, default=10,
                   help="event names to list (default 10)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("metrics", help="summarize metrics snapshots")
    p.add_argument("file")
    p.add_argument("--check", action="store_true")
    p.add_argument("--grep", help="only show metrics containing SUBSTR")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("audit", help="summarize the policy decision audit")
    p.add_argument("file")
    p.add_argument("--check", action="store_true")
    p.add_argument("--vm", type=int, help="restrict verdicts to one VM id")
    p.set_defaults(fn=cmd_audit)

    p = sub.add_parser("fleet-report",
                       help="one-page rack/fleet control-plane health report")
    p.add_argument("file")
    p.add_argument("--check", action="store_true")
    p.add_argument("--top", type=int, default=10,
                   help="shards to list in the engine section (default 10)")
    p.set_defaults(fn=cmd_fleet_report)

    args = parser.parse_args()
    args.fn(args)


if __name__ == "__main__":
    main()
