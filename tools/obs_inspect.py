#!/usr/bin/env python3
"""Inspect the observability outputs written by the --trace-out /
--metrics-out / --audit-out bench flags (src/obs).

Usage:
  obs_inspect.py trace   <trace.json>    [--check]
  obs_inspect.py metrics <metrics.jsonl> [--check] [--grep SUBSTR]
  obs_inspect.py audit   <audit.jsonl>   [--check] [--vm N]

Each subcommand parses one pillar's export, prints a human summary, and
exits non-zero when the file is malformed — `--check` suppresses the
summary so CI can use it as a pure validator.

  trace    Chrome trace-event JSON (load interactively at ui.perfetto.dev).
           Summarizes events per process/track, phase mix and time range.
  metrics  Registry snapshots, JSONL (one {"t_s":..,"metrics":{..}} object
           per line) or CSV (".csv" exports). Summarizes rows, columns and
           final values.
  audit    Policy decision audit log, JSONL (one DecisionRecord per line).
           Summarizes verdicts, triggering conditions and send outcomes.
"""

import argparse
import collections
import csv
import json
import sys


def fail(msg):
    print(f"obs_inspect: {msg}", file=sys.stderr)
    sys.exit(1)


def load_jsonl(path):
    rows = []
    with open(path, encoding="utf-8") as fh:
        for n, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                fail(f"{path}:{n}: invalid JSON: {exc}")
    return rows


def cmd_trace(args):
    try:
        with open(args.file, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{args.file}: {exc}")
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        fail(f"{args.file}: no traceEvents array")

    procs, threads = {}, {}
    for ev in events:
        if ev.get("ph") == "M":
            if ev.get("name") == "process_name":
                procs[ev["pid"]] = ev["args"]["name"]
            elif ev.get("name") == "thread_name":
                threads[(ev["pid"], ev["tid"])] = ev["args"]["name"]

    phases = collections.Counter(ev.get("ph") for ev in events)
    per_track = collections.Counter()
    names = collections.Counter()
    t_lo, t_hi = None, 0.0
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("X", "i", "C"):
            continue
        key = (procs.get(ev.get("pid"), "?"),
               threads.get((ev.get("pid"), ev.get("tid")), "?"))
        per_track[key] += 1
        names[ev.get("name", "?")] += 1
        ts = float(ev.get("ts", 0))
        end = ts + float(ev.get("dur", 0))
        t_lo = ts if t_lo is None else min(t_lo, ts)
        t_hi = max(t_hi, end)

    if args.check:
        if not events:
            fail(f"{args.file}: empty trace")
        return
    print(f"{args.file}: {len(events)} events "
          f"(spans {phases['X']}, instants {phases['i']}, "
          f"counters {phases['C']}, metadata {phases['M']})")
    if t_lo is not None:
        print(f"time range: {t_lo / 1e6:.3f}s .. {t_hi / 1e6:.3f}s (sim time)")
    print("events per track:")
    for (proc, thread), n in sorted(per_track.items()):
        print(f"  {proc:>10s}/{thread:<16s} {n}")
    print("top event names:")
    for name, n in names.most_common(args.top):
        print(f"  {name:<28s} {n}")


def cmd_metrics(args):
    if args.file.endswith(".csv"):
        try:
            with open(args.file, encoding="utf-8", newline="") as fh:
                table = list(csv.DictReader(fh))
        except (OSError, csv.Error) as exc:
            fail(f"{args.file}: {exc}")
        if not table:
            fail(f"{args.file}: empty metrics CSV")
        rows = [{"t_s": float(r.pop("t_s", "nan")),
                 "metrics": {k: (float(v) if v != "" else None)
                             for k, v in r.items()}} for r in table]
    else:
        rows = load_jsonl(args.file)
        for r in rows:
            if "t_s" not in r or "metrics" not in r:
                fail(f"{args.file}: snapshot missing t_s/metrics: {r}")
    if args.check:
        if not rows:
            fail(f"{args.file}: no snapshots")
        return
    last = rows[-1]
    names = sorted(last["metrics"])
    if args.grep:
        names = [n for n in names if args.grep in n]
    print(f"{args.file}: {len(rows)} snapshots, "
          f"{len(last['metrics'])} metrics, "
          f"t = {rows[0]['t_s']:.3f}s .. {last['t_s']:.3f}s")
    print(f"final values{f' (matching {args.grep!r})' if args.grep else ''}:")
    for name in names:
        v = last["metrics"][name]
        print(f"  {name:<36s} {'null' if v is None else f'{v:g}'}")


def cmd_audit(args):
    rows = load_jsonl(args.file)
    for n, r in enumerate(rows, 1):
        for key in ("stats_seq", "decided_at_s", "policy", "vms"):
            if key not in r:
                fail(f"{args.file}: record {n} missing '{key}'")
    if args.check:
        if not rows:
            fail(f"{args.file}: no decision records")
        return
    sent = sum(1 for r in rows if r.get("sent"))
    suppressed = sum(1 for r in rows if r.get("suppressed"))
    renorm = sum(1 for r in rows if r.get("renormalized"))
    verdicts = collections.Counter()
    conditions = collections.Counter()
    for r in rows:
        for vm in r["vms"]:
            if args.vm and vm.get("vm") != args.vm:
                continue
            verdicts[vm.get("verdict", "?")] += 1
            conditions[vm.get("condition", "?")] += 1
    ages = [r.get("stats_age_intervals", 0.0) for r in rows]
    print(f"{args.file}: {len(rows)} decisions by "
          f"{rows[0]['policy'] if rows else '?'} "
          f"(sent {sent}, suppressed {suppressed}, renormalized {renorm})")
    if ages:
        print(f"stats staleness: mean {sum(ages) / len(ages):.3f} "
              f"max {max(ages):.3f} sampling intervals")
    scope = f" (vm {args.vm})" if args.vm else ""
    print(f"per-VM verdicts{scope}:")
    for verdict, n in verdicts.most_common():
        print(f"  {verdict:<8s} {n}")
    print(f"triggering conditions{scope}:")
    for cond, n in conditions.most_common():
        print(f"  {cond:<28s} {n}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("trace", help="summarize a Chrome trace-event JSON")
    p.add_argument("file")
    p.add_argument("--check", action="store_true",
                   help="validate only; no summary output")
    p.add_argument("--top", type=int, default=10,
                   help="event names to list (default 10)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("metrics", help="summarize metrics snapshots")
    p.add_argument("file")
    p.add_argument("--check", action="store_true")
    p.add_argument("--grep", help="only show metrics containing SUBSTR")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("audit", help="summarize the policy decision audit")
    p.add_argument("file")
    p.add_argument("--check", action="store_true")
    p.add_argument("--vm", type=int, help="restrict verdicts to one VM id")
    p.set_defaults(fn=cmd_audit)

    args = parser.parse_args()
    args.fn(args)


if __name__ == "__main__":
    main()
