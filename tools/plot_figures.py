#!/usr/bin/env python3
"""Plot the CSV files the figure benches emit with --csv <dir>.

Usage:
    # generate the data
    ./build/bench/fig03_scenario1_runtimes --csv out/
    ./build/bench/fig04_scenario1_usage --csv out/
    # render PNGs next to the CSVs
    python3 tools/plot_figures.py out/

Two CSV schemas are understood:
  * runtime tables:  scenario,policy,vm,label,mean_s,stddev_s,n
    -> grouped bar chart per (vm, label), one bar per policy (the paper's
       Figures 3/5/7/9 format)
  * usage series:    series,time_s,value
    -> per-VM tmem pages over time, targets dashed (Figures 4/6/8/10)

Only needs matplotlib; skips files it does not recognize.
"""
import csv
import pathlib
import sys
from collections import defaultdict


def plot_runtimes(path, plt):
    rows = list(csv.DictReader(open(path)))
    if not rows:
        return False
    policies = []
    cells = defaultdict(dict)  # (vm,label) -> policy -> (mean, std)
    for r in rows:
        if r["policy"] not in policies:
            policies.append(r["policy"])
        cells[(r["vm"], r["label"])][r["policy"]] = (
            float(r["mean_s"]), float(r["stddev_s"]))
    groups = sorted(cells.keys())
    width = 0.8 / max(len(policies), 1)
    fig, ax = plt.subplots(figsize=(max(8, len(groups) * 1.2), 4.5))
    for pi, pol in enumerate(policies):
        xs, ys, es = [], [], []
        for gi, key in enumerate(groups):
            if pol in cells[key]:
                xs.append(gi + pi * width)
                ys.append(cells[key][pol][0])
                es.append(cells[key][pol][1])
        ax.bar(xs, ys, width=width, yerr=es, capsize=2, label=pol)
    ax.set_xticks([g + 0.4 for g in range(len(groups))])
    ax.set_xticklabels([f"{vm}\n{label}" for vm, label in groups], fontsize=8)
    ax.set_ylabel("running time (s)")
    ax.set_title(pathlib.Path(path).stem)
    ax.legend(fontsize=8)
    fig.tight_layout()
    out = str(path).rsplit(".", 1)[0] + ".png"
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")
    return True


def plot_usage(path, plt):
    rows = list(csv.DictReader(open(path)))
    if not rows:
        return False
    series = defaultdict(list)
    for r in rows:
        series[r["series"]].append((float(r["time_s"]), float(r["value"])))
    fig, ax = plt.subplots(figsize=(8, 4.5))
    for name in sorted(series):
        if name == "free":
            continue
        pts = sorted(series[name])
        style = "--" if name.startswith("target-") else "-"
        ax.plot([p[0] for p in pts], [p[1] for p in pts], style, label=name,
                linewidth=1)
    ax.set_xlabel("time (s)")
    ax.set_ylabel("tmem pages")
    ax.set_title(pathlib.Path(path).stem)
    ax.legend(fontsize=8)
    fig.tight_layout()
    out = str(path).rsplit(".", 1)[0] + ".png"
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")
    return True


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib")
        return 1
    for path in sorted(pathlib.Path(sys.argv[1]).glob("*.csv")):
        with open(path) as f:
            header = f.readline().strip()
        if header.startswith("scenario,policy"):
            plot_runtimes(path, plt)
        elif header.startswith("series,"):
            plot_usage(path, plt)
        else:
            print(f"skipping {path} (unknown schema)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
